#include "runtime/LLStarParser.h"

#include "support/StringUtils.h"

#include <cassert>

using namespace llstar;

namespace {

/// Smallest user-defined token type in \p S (the token conjured for a
/// single-token insertion against a set edge). The strategy only requests
/// insertion when one exists.
TokenType firstUserToken(const IntervalSet &S) {
  for (const Interval &I : S.intervals())
    if (I.Hi >= TokenMinUserType)
      return std::max(I.Lo, TokenMinUserType);
  return TokenInvalid;
}

} // namespace

LLStarParser::LLStarParser(const AnalyzedGrammar &AG, TokenStream &Stream,
                           SemanticEnv *Env, DiagnosticEngine &Diags)
    : LLStarParser(AG, Stream, Env, Diags, [&AG] {
        ParserOptions O;
        O.Memoize = AG.grammar().Options.Memoize;
        return O;
      }()) {}

LLStarParser::LLStarParser(const AnalyzedGrammar &AG, TokenStream &Stream,
                           SemanticEnv *Env, DiagnosticEngine &Diags,
                           ParserOptions Opts)
    : AG(AG), M(AG.atn()), Stream(Stream), Env(Env), Diags(Diags),
      Opts(Opts) {
  Stats.ensure(AG.numDecisions());
}

std::unique_ptr<ParseTree> LLStarParser::parse(const std::string &RuleName) {
  int32_t Rule = RuleName.empty() ? AG.grammar().startRule()
                                  : AG.grammar().findRule(RuleName);
  if (Rule < 0) {
    Diags.error("unknown start rule '" + RuleName + "'");
    LastParseOk = false;
    return nullptr;
  }
  Memo.clear();
  ArenaRoot = nullptr;
  DeadlineHit = false;
  DeadlinePollCountdown = DeadlinePollInterval;
  FollowStack.clear();
  LastErrorIndex = -1;
  InsertionsSinceConsume = 0;

  std::unique_ptr<ParseTree> HeapRoot;
  NodeRef Root;
  if (Opts.TreeArena) {
    if (Opts.BuildTree) {
      ArenaRoot = ArenaParseTree::ruleNode(*Opts.TreeArena, Rule);
      Root.InArena = ArenaRoot;
    }
  } else {
    HeapRoot = ParseTree::ruleNode(Rule);
    if (Opts.BuildTree)
      Root.Heap = HeapRoot.get();
  }
  unsigned ErrorsBefore = Diags.errorCount();
  bool Ok = runStates(M.ruleStart(Rule), M.ruleStop(Rule), Root);
  if (!Ok && canRecover()) {
    // Top-level sync: the invocation stack is empty, so the recovery set is
    // {EOF} and this drains the remaining input as error leaves.
    syncAfterRuleFailure(Root);
    Ok = true;
  }
  LastParseOk = Ok && Diags.errorCount() == ErrorsBefore;
  return HeapRoot;
}

//===----------------------------------------------------------------------===//
// Core interpretation
//===----------------------------------------------------------------------===//

bool LLStarParser::runRule(int32_t RuleIndex, int32_t Precedence,
                           NodeRef Parent) {
  const Rule &R = AG.grammar().rule(RuleIndex);

  // Memoize speculative whole-rule parses (packrat memoization; only while
  // speculating, per paper Section 6.2).
  uint64_t Key = 0;
  bool UseMemo = speculating() && Opts.Memoize;
  if (UseMemo) {
    Key = memoKey(RuleIndex, Precedence, Stream.index());
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      ++Stats.MemoHits;
      if (It->second < 0)
        return false;
      Stream.seek(It->second);
      if (SpecMaxIndex < It->second)
        SpecMaxIndex = It->second;
      return true;
    }
    ++Stats.MemoMisses;
  }

  // Incremental reparse: splice a recorded subtree instead of running the
  // body when the subscriber vouches for it (see runtime/ReuseHooks.h).
  if (Opts.Hooks && !speculating() && Parent) {
    ReuseHooks::Splice Sp;
    if (Opts.Hooks->tryReuse(RuleIndex, Precedence, Stream.index(), Sp)) {
      if (Parent.Heap)
        Parent.Heap->addChild(std::move(Sp.Heap));
      else if (Parent.InArena)
        Parent.InArena->addChild(Sp.InArena);
      Stream.seek(Sp.NextIndex);
      InsertionsSinceConsume = 0;
      ++Stats.NodesReused;
      return true;
    }
  }

  NodeRef Node;
  if (Parent && !speculating())
    Node = addRuleChild(Parent, RuleIndex);

  bool Hooked = Opts.Hooks && !speculating();
  if (Hooked)
    Opts.Hooks->enterRule(RuleIndex, Precedence, Stream.index());

  if (R.IsPrecedenceRule)
    PrecStack.push_back(Precedence);
  bool Ok = runStates(M.ruleStart(RuleIndex), M.ruleStop(RuleIndex), Node);
  if (R.IsPrecedenceRule)
    PrecStack.pop_back();

  if (!Ok && canRecover()) {
    // Sync-and-return: pretend the rule completed, resynchronizing the
    // input to a token some caller can match. The error was already
    // reported; the skipped region survives as error leaves under Node.
    syncAfterRuleFailure(Node);
    Ok = true;
  }

  if (Hooked)
    Opts.Hooks->exitRule(RuleIndex, Stream.index(), Node.Heap, Node.InArena);

  if (UseMemo)
    Memo[Key] = Ok ? Stream.index() : -1;
  return Ok;
}

bool LLStarParser::runStates(int32_t From, int32_t Until, NodeRef Parent) {
  int32_t P = From;
  // Guards against loop decisions that iterate without consuming input
  // (an epsilon-matching loop body).
  std::unordered_map<int32_t, int64_t> LoopWatermark;

  while (P != Until) {
    if (!deadlineOk())
      return false;
    const AtnState &S = M.state(P);

    if (S.isDecision()) {
      int32_t Alt = adaptivePredict(S.Decision);
      if (Alt < 0) {
        // Panic recovery: drop tokens nobody can accept, then retry the
        // prediction once if the resync token is matchable right here.
        // A second failure unwinds to the rule-level sync in runRule.
        if (!canRecover() || !recoverAtDecision(P, Parent))
          return false;
        Alt = adaptivePredict(S.Decision);
        if (Alt < 0)
          return false;
      }
      bool IsLoop = S.Kind == AtnStateKind::StarLoopEntry ||
                    S.Kind == AtnStateKind::PlusLoopBack;
      if (IsLoop) {
        int32_t ExitAlt = int32_t(S.Transitions.size());
        if (Alt != ExitAlt) {
          auto [It, Inserted] = LoopWatermark.emplace(P, Stream.index());
          if (!Inserted) {
            if (It->second == Stream.index())
              Alt = ExitAlt; // no progress since last iteration: exit
            else
              It->second = Stream.index();
          }
        }
      }
      P = S.Transitions[size_t(Alt) - 1].Target;
      continue;
    }

    assert(S.Transitions.size() == 1 &&
           "non-decision states have exactly one transition");
    const AtnTransition &T = S.Transitions[0];
    switch (T.Kind) {
    case AtnTransitionKind::Epsilon:
    case AtnTransitionKind::SynPred:
      // Syntactic predicates were consulted during prediction; once an
      // alternative is chosen the gate is a no-op.
      P = T.Target;
      break;
    case AtnTransitionKind::Set:
    case AtnTransitionKind::Atom: {
      bool Matches = T.Kind == AtnTransitionKind::Atom
                         ? Stream.LA(1) == T.Label
                         : (Stream.LA(1) != TokenEof &&
                            T.Labels.contains(Stream.LA(1)));
      if (!Matches) {
        if (speculating() || DeadlineHit)
          return false;
        reportMismatch(T.Kind == AtnTransitionKind::Atom ? T.Label
                                                         : TokenInvalid);
        if (!canRecover())
          return false;
        IntervalSet Expected = T.Kind == AtnTransitionKind::Atom
                                   ? IntervalSet::of(T.Label)
                                   : T.Labels;
        RepairContext Ctx{Stream.LA(1), Stream.LA(2), Expected,
                          viableAfter(T.Target), InsertionsSinceConsume};
        RepairAction Act = strategy().onMismatch(Ctx);
        if (Act == RepairAction::DeleteToken) {
          // The next token matches: the current one is spurious.
          Diags.note(Stream.LT(1).Loc,
                     "deleted '" + Stream.LT(1).Text + "' to recover");
          skipTokenAsError(Parent);
          ++Stats.TokensDeleted;
          // Fall through to match the token now at the front.
        } else if (Act == RepairAction::InsertToken) {
          // Conjure the expected token: the parse continues as if it were
          // present, leaving a zero-width Missing error leaf.
          TokenType Conjured =
              T.Kind == AtnTransitionKind::Atom
                  ? T.Label
                  : firstUserToken(Expected);
          Diags.note(Stream.LT(1).Loc,
                     "inserted missing " +
                         AG.grammar().vocabulary().name(Conjured) +
                         " to recover");
          addMissingTokenChild(Parent, Conjured);
          ++Stats.TokensInserted;
          ++InsertionsSinceConsume;
          P = T.Target;
          break;
        } else {
          return false; // unwind to the rule-level sync
        }
      }
      if (Parent && !speculating())
        addTokenChild(Parent);
      if (speculating() && SpecMaxIndex < Stream.index() + 1)
        SpecMaxIndex = Stream.index() + 1;
      Stream.consume();
      ++Stats.TokensConsumed;
      InsertionsSinceConsume = 0;
      P = T.Target;
      break;
    }
    case AtnTransitionKind::Rule: {
      FollowStack.push_back(T.FollowState);
      bool Ok = runRule(T.RuleIndex, T.Precedence, Parent);
      FollowStack.pop_back();
      if (!Ok)
        return false;
      P = T.FollowState;
      break;
    }
    case AtnTransitionKind::SemPred:
      if (!evalNamedPredicate(T.PredIndex)) {
        if (!speculating()) {
          const AtnPredicate &Pred = M.predicate(T.PredIndex);
          Diags.error(Stream.LT(1).Loc,
                      "rule " + AG.grammar().rule(S.RuleIndex).Name +
                          " failed predicate {" + Pred.Name + "}?");
        }
        return false;
      }
      P = T.Target;
      break;
    case AtnTransitionKind::Action:
      runAction(T.ActionIndex);
      P = T.Target;
      break;
    }
  }
  return true;
}

LLStarParser::NodeRef LLStarParser::addRuleChild(NodeRef Parent,
                                                 int32_t RuleIndex) {
  NodeRef Node;
  if (Parent.Heap)
    Node.Heap = Parent.Heap->addChild(ParseTree::ruleNode(RuleIndex));
  else if (Parent.InArena)
    Node.InArena = Parent.InArena->addChild(
        ArenaParseTree::ruleNode(*Opts.TreeArena, RuleIndex));
  return Node;
}

void LLStarParser::addTokenChild(NodeRef Parent) {
  if (Parent.Heap)
    Parent.Heap->addChild(ParseTree::tokenNode(Stream.LT(1)));
  else if (Parent.InArena)
    Parent.InArena->addChild(
        ArenaParseTree::tokenNode(*Opts.TreeArena, Stream.index()));
}

void LLStarParser::addErrorTokenChild(NodeRef Parent) {
  if (Parent.Heap)
    Parent.Heap->addChild(
        ParseTree::errorNode(Stream.LT(1), ErrorNodeKind::Skipped));
  else if (Parent.InArena)
    Parent.InArena->addChild(
        ArenaParseTree::errorNode(*Opts.TreeArena, Stream.index()));
}

void LLStarParser::addMissingTokenChild(NodeRef Parent, TokenType Missing) {
  if (Parent.Heap) {
    // Borrow the span of the token at the repair point; the text marks the
    // leaf as synthetic.
    Token Tok = Stream.LT(1);
    Tok.Type = Missing;
    Tok.Text = "<missing " + AG.grammar().vocabulary().name(Missing) + ">";
    Parent.Heap->addChild(
        ParseTree::errorNode(std::move(Tok), ErrorNodeKind::Missing));
  } else if (Parent.InArena) {
    Parent.InArena->addChild(
        ArenaParseTree::missingNode(*Opts.TreeArena, Missing, Stream.index()));
  }
}

void LLStarParser::addMarkerChild(NodeRef Parent) {
  if (Parent.Heap) {
    Token Tok = Stream.LT(1);
    Tok.Type = TokenInvalid;
    Tok.Text.clear();
    Parent.Heap->addChild(
        ParseTree::errorNode(std::move(Tok), ErrorNodeKind::Marker));
  } else if (Parent.InArena) {
    Parent.InArena->addChild(
        ArenaParseTree::markerNode(*Opts.TreeArena, Stream.index()));
  }
}

bool LLStarParser::deadlineOk() {
  if (DeadlineHit)
    return false;
  if (--DeadlinePollCountdown > 0)
    return true;
  DeadlinePollCountdown = DeadlinePollInterval;
  if (Opts.Deadline == std::chrono::steady_clock::time_point::max() ||
      std::chrono::steady_clock::now() <= Opts.Deadline)
    return true;
  DeadlineHit = true;
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  Diags.error(Stream.LT(1).Loc, "parse deadline exceeded");
  return false;
}

//===----------------------------------------------------------------------===//
// Prediction
//===----------------------------------------------------------------------===//

int32_t LLStarParser::adaptivePredict(int32_t Decision) {
  const LookaheadDfa &Dfa = AG.dfa(Decision);
  int32_t S = 0;
  int64_t Depth = 0;
  int64_t StartIndex = Stream.index();
  bool Backtracked = false;

  auto Record = [&](int64_t UsedK, int32_t Alt) {
    // The reuse subscriber needs every decision's lookahead extent, stats
    // on or off, speculative or not (StartIndex + max(K,1) inclusively
    // over-approximates the deepest token examined by at most one).
    if (Opts.Hooks)
      Opts.Hooks->lookahead(StartIndex + std::max<int64_t>(UsedK, 1));
    if (!Opts.CollectStats)
      return;
    Stats.Decisions[size_t(Decision)].record(std::max<int64_t>(UsedK, 1),
                                             Backtracked, Alt);
  };

  while (true) {
    if (!deadlineOk())
      return -1;
    const DfaState &St = Dfa.state(S);
    if (St.isAccept()) {
      Record(Depth, St.PredictedAlt);
      return St.PredictedAlt;
    }
    TokenType T = Stream.LA(Depth + 1);
    int32_t Next = St.edgeOn(T);
    if (Next == S && T == TokenEof)
      Next = -1; // EOF self-loops cannot make progress
    if (Next >= 0) {
      ++Depth;
      S = Next;
      continue;
    }
    // No terminal edge applies: try the predicate edges in alternative
    // order (ordered choice; lower alternatives take precedence).
    for (const DfaPredEdge &E : St.PredEdges) {
      int64_t SpecBefore = SpecMaxIndex;
      SpecMaxIndex = StartIndex + Depth;
      bool IsSyn = E.Pred.isSyntactic();
      bool Holds = evalSemanticContext(E.Pred);
      int64_t Reach = SpecMaxIndex - StartIndex;
      SpecMaxIndex = std::max(SpecBefore, SpecMaxIndex);
      if (IsSyn) {
        Backtracked = true;
        Depth = std::max(Depth, Reach);
      }
      if (Holds) {
        Record(Depth, E.Alt);
        return E.Alt;
      }
    }
    Record(Depth, /*Alt=*/-1);
    if (!speculating() && !DeadlineHit)
      reportNoViableAlt(Decision, Depth);
    return -1;
  }
}

bool LLStarParser::evalSemanticContext(const SemanticContext &Pred) {
  switch (Pred.K) {
  case SemanticContext::Kind::None:
    return true;
  case SemanticContext::Kind::Pred:
    return evalNamedPredicate(Pred.A);
  case SemanticContext::Kind::SynPredRule:
    return evalSynPredRule(Pred.A);
  case SemanticContext::Kind::SynPredAlt:
    return evalSynPredAlt(Pred.A, Pred.B);
  }
  return true;
}

bool LLStarParser::evalNamedPredicate(int32_t PredIndex) {
  const AtnPredicate &P = M.predicate(PredIndex);
  if (P.isPrecedence()) {
    // Precedence gates read only the invocation's precedence argument,
    // which is part of the reuse key — no poisoning needed.
    int32_t Current = PrecStack.empty() ? 0 : PrecStack.back();
    return Current <= P.MinPrecedence;
  }
  // A named predicate makes the decision depend on ambient semantic state;
  // nodes above this point must not be reused.
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  if (Env)
    if (const SemanticEnv::Predicate *Fn = Env->findPredicate(P.Name))
      return (*Fn)();
  if (ReportedUnbound.insert(P.Name).second)
    Diags.warning("predicate '" + P.Name +
                  "' is not bound in the semantic environment; assuming true");
  return true;
}

bool LLStarParser::evalSynPredRule(int32_t FragmentRule) {
  ++Stats.SynPredEvals;
  int64_t Mark = Stream.index();
  ++SpecDepth;
  bool Ok = runRule(FragmentRule, 0, NodeRef());
  --SpecDepth;
  Stream.seek(Mark);
  return Ok;
}

bool LLStarParser::evalSynPredAlt(int32_t Decision, int32_t Alt) {
  ++Stats.SynPredEvals;
  const AtnState &S = M.state(M.decisionState(Decision));
  assert(Alt >= 1 && size_t(Alt) <= S.Transitions.size() &&
         "alternative out of range");
  assert(S.EndState >= 0 && "decision has no end state");
  int64_t Mark = Stream.index();
  ++SpecDepth;
  bool Ok = runStates(S.Transitions[size_t(Alt) - 1].Target, S.EndState,
                      NodeRef());
  --SpecDepth;
  Stream.seek(Mark);
  return Ok;
}

void LLStarParser::runAction(int32_t ActionIndex) {
  // Actions mutate ambient state; conservatively poison even when the
  // action is skipped during speculation (it would run on re-execution).
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  const AtnAction &A = M.action(ActionIndex);
  if (speculating() && !A.Always)
    return; // mutators are deactivated during speculation (Section 4.3)
  if (Env)
    if (const SemanticEnv::Action *Fn = Env->findAction(A.Name)) {
      (*Fn)();
      return;
    }
  if (ReportedUnbound.insert(A.Name).second)
    Diags.warning("action '" + A.Name +
                  "' is not bound in the semantic environment; skipping");
}

//===----------------------------------------------------------------------===//
// Errors
//===----------------------------------------------------------------------===//

void LLStarParser::reportMismatch(TokenType Expected) {
  // Errors (and any recovery that follows) depend on the dynamic follow
  // stack, not just this rule's token window: never reuse across them.
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  ++Stats.SyntaxErrors;
  const Token &T = Stream.LT(1);
  // TokenInvalid marks a token-set mismatch; name the token, not the set.
  Diags.error(T.Loc, "mismatched input '" + T.Text + "' expecting " +
                         (Expected == TokenInvalid
                              ? std::string("a different token")
                              : AG.grammar().vocabulary().name(Expected)));
}

void LLStarParser::reportNoViableAlt(int32_t Decision, int64_t DepthReached) {
  if (Opts.Hooks)
    Opts.Hooks->opaque();
  ++Stats.SyntaxErrors;
  // Report at the token that killed the DFA walk, not at the decision start
  // (paper Section 4.4).
  const Token &T = Stream.LT(DepthReached + 1);
  const AtnState &S = M.state(M.decisionState(Decision));
  std::string RuleName =
      S.RuleIndex >= 0 ? AG.grammar().rule(S.RuleIndex).Name : "<none>";
  Diags.error(T.Loc, "no viable alternative at input '" + T.Text +
                         "' (rule " + RuleName + ")");
}

//===----------------------------------------------------------------------===//
// Recovery
//===----------------------------------------------------------------------===//

IntervalSet LLStarParser::viableAfter(int32_t State) const {
  const RecoverySets &RS = AG.recovery();
  IntervalSet V = RS.follow(State);
  // While the rule end is reachable without consuming, tokens viable at the
  // pending return sites are viable here too.
  bool Open = RS.reachesEnd(State);
  for (auto It = FollowStack.rbegin(); Open && It != FollowStack.rend();
       ++It) {
    V.addSet(RS.follow(*It));
    Open = RS.reachesEnd(*It);
  }
  if (Open)
    V.add(TokenEof);
  return V;
}

IntervalSet LLStarParser::recoverySet() const {
  const RecoverySets &RS = AG.recovery();
  IntervalSet R;
  for (int32_t F : FollowStack)
    R.addSet(RS.follow(F));
  // EOF always synchronizes; with an empty invocation stack it is the only
  // member, so a top-level sync drains the input.
  R.add(TokenEof);
  return R;
}

void LLStarParser::skipTokenAsError(NodeRef Parent) {
  addErrorTokenChild(Parent);
  Stream.consume();
  InsertionsSinceConsume = 0;
}

void LLStarParser::syncAfterRuleFailure(NodeRef Node) {
  ++Stats.PanicSyncs;
  size_t Skipped = 0;
  // Failing twice at the same position means the recovery set itself is
  // not parsable here; force one token of progress so recovery terminates.
  if (Stream.index() == LastErrorIndex && Stream.LA(1) != TokenEof) {
    skipTokenAsError(Node);
    ++Skipped;
  }
  IntervalSet R = recoverySet();
  while (Stream.LA(1) != TokenEof && !R.contains(Stream.LA(1))) {
    skipTokenAsError(Node);
    ++Skipped;
  }
  LastErrorIndex = Stream.index();
  if (Skipped == 0) {
    // Nothing consumed: leave a zero-width marker so every reported error
    // still has at least one error leaf in the tree.
    addMarkerChild(Node);
  } else {
    Diags.note(Stream.LT(1).Loc,
               "skipped " + std::to_string(Skipped) +
                   (Skipped == 1 ? " token" : " tokens") +
                   " to resynchronize");
  }
}

bool LLStarParser::recoverAtDecision(int32_t State, NodeRef Parent) {
  const RecoverySets &RS = AG.recovery();
  const IntervalSet &Here = RS.follow(State);
  IntervalSet R = recoverySet();
  size_t Skipped = 0;
  while (Stream.LA(1) != TokenEof && !Here.contains(Stream.LA(1)) &&
         !R.contains(Stream.LA(1))) {
    skipTokenAsError(Parent);
    ++Skipped;
  }
  if (Skipped) {
    ++Stats.PanicSyncs;
    Diags.note(Stream.LT(1).Loc,
               "skipped " + std::to_string(Skipped) +
                   (Skipped == 1 ? " token" : " tokens") +
                   " to resynchronize");
  }
  // Retry only when we made progress and landed on a token this decision
  // can start with; otherwise unwind to the rule-level sync.
  return Skipped > 0 && Stream.LA(1) != TokenEof &&
         Here.contains(Stream.LA(1));
}
