#include "runtime/ParserStats.h"

#include <cstdio>

using namespace llstar;

void ParserStats::merge(const ParserStats &O) {
  ensure(O.Decisions.size());
  for (size_t I = 0; I < O.Decisions.size(); ++I)
    Decisions[I].merge(O.Decisions[I]);
  SynPredEvals += O.SynPredEvals;
  MemoHits += O.MemoHits;
  MemoMisses += O.MemoMisses;
  TokensConsumed += O.TokensConsumed;
  SyntaxErrors += O.SyntaxErrors;
  TokensDeleted += O.TokensDeleted;
  TokensInserted += O.TokensInserted;
  PanicSyncs += O.PanicSyncs;
  NodesReused += O.NodesReused;
  TokensRelexed += O.TokensRelexed;
  DecisionsReparsed += O.DecisionsReparsed;
}

namespace {

void appendNum(std::string &Out, const char *Key, int64_t V) {
  Out += '"';
  Out += Key;
  Out += "\":";
  Out += std::to_string(V);
}

void appendDouble(std::string &Out, const char *Key, double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "\"%s\":%.6g", Key, V);
  Out += Buf;
}

void appendQuoted(std::string &Out, const char *Key, const std::string &V) {
  Out += '"';
  Out += Key;
  Out += "\":\"";
  for (char C : V) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  Out += '"';
}

void appendHist(std::string &Out, const char *Key,
                const std::array<int64_t, KHistBuckets> &H) {
  Out += '"';
  Out += Key;
  Out += "\":[";
  for (size_t I = 0; I < H.size(); ++I) {
    if (I)
      Out += ',';
    Out += std::to_string(H[I]);
  }
  Out += ']';
}

} // namespace

std::string ParserStats::json(bool IncludeDecisions,
                              const std::vector<DecisionKey> *Keys,
                              const char *Backend) const {
  std::string Out = "{";
  if (Backend) {
    appendQuoted(Out, "backend", Backend);
    Out += ',';
  }
  appendNum(Out, "decisionEvents", totalEvents());
  Out += ',';
  appendNum(Out, "decisionsCovered", decisionsCovered());
  Out += ',';
  appendDouble(Out, "avgLookahead", avgLookahead());
  Out += ',';
  appendNum(Out, "maxLookahead", maxLookahead());
  Out += ',';
  appendHist(Out, "kHistogram", kHistogram());
  Out += ',';
  appendNum(Out, "backtrackEvents", backtrackEvents());
  Out += ',';
  appendDouble(Out, "backtrackFraction", backtrackEventFraction());
  Out += ',';
  appendDouble(Out, "avgBacktrackLookahead", avgBacktrackLookahead());
  Out += ',';
  appendNum(Out, "synPredEvals", SynPredEvals);
  Out += ',';
  appendNum(Out, "memoHits", MemoHits);
  Out += ',';
  appendNum(Out, "memoMisses", MemoMisses);
  Out += ',';
  appendNum(Out, "tokensConsumed", TokensConsumed);
  Out += ',';
  appendNum(Out, "syntaxErrors", SyntaxErrors);
  Out += ',';
  appendNum(Out, "tokensDeleted", TokensDeleted);
  Out += ',';
  appendNum(Out, "tokensInserted", TokensInserted);
  Out += ',';
  appendNum(Out, "panicSyncs", PanicSyncs);
  Out += ',';
  appendNum(Out, "nodesReused", NodesReused);
  Out += ',';
  appendNum(Out, "tokensRelexed", TokensRelexed);
  Out += ',';
  appendNum(Out, "decisionsReparsed", DecisionsReparsed);
  if (IncludeDecisions) {
    Out += ",\"decisions\":[";
    bool First = true;
    for (size_t I = 0; I < Decisions.size(); ++I) {
      const DecisionStats &D = Decisions[I];
      if (D.Events == 0)
        continue;
      if (!First)
        Out += ',';
      First = false;
      Out += "{";
      appendNum(Out, "decision", int64_t(I));
      if (Keys && I < Keys->size() && !(*Keys)[I].Rule.empty()) {
        const DecisionKey &K = (*Keys)[I];
        Out += ',';
        appendQuoted(Out, "rule", K.Rule);
        Out += ',';
        appendNum(Out, "decisionInRule", K.DecisionInRule);
        Out += ',';
        appendNum(Out, "line", int64_t(K.Line));
        Out += ',';
        appendNum(Out, "column", int64_t(K.Column));
      }
      Out += ',';
      appendNum(Out, "events", D.Events);
      Out += ',';
      appendNum(Out, "totalK", D.TotalK);
      Out += ',';
      appendNum(Out, "maxK", D.MaxK);
      Out += ',';
      appendHist(Out, "kHistogram", D.KHist);
      Out += ',';
      appendNum(Out, "backtrackEvents", D.BacktrackEvents);
      Out += ',';
      appendNum(Out, "backtrackTotalK", D.BacktrackTotalK);
      Out += ",\"altEvents\":[";
      for (size_t A = 0; A < D.AltEvents.size(); ++A) {
        if (A)
          Out += ',';
        Out += std::to_string(D.AltEvents[A]);
      }
      Out += "]}";
    }
    Out += "]";
  }
  Out += "}";
  return Out;
}
