//===- runtime/Arena.h - Bump-pointer region allocator ----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bump-pointer arena for per-request allocation in the batch parsing
/// service. A parse request allocates all of its tree nodes from one arena
/// and the whole region is released (or recycled) in O(1) when the request
/// finishes — no per-node destructor walk, no allocator lock contention
/// between worker threads.
///
/// Only trivially destructible types may be created in an arena; the arena
/// never runs destructors. \ref ArenaParseTree is designed around this
/// (token leaves store stream indices, not owning strings).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RUNTIME_ARENA_H
#define LLSTAR_RUNTIME_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace llstar {

/// A growable bump-pointer region. Not thread-safe: each service worker
/// owns one arena and resets it between requests.
class Arena {
public:
  explicit Arena(size_t BlockBytes = 1 << 16) : BlockBytes(BlockBytes) {}

  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Returns \p Bytes of storage aligned to \p Align. Never fails except by
  /// throwing std::bad_alloc like operator new.
  void *allocate(size_t Bytes, size_t Align = alignof(std::max_align_t)) {
    size_t Aligned = (Cur + Align - 1) & ~(Align - 1);
    if (Aligned + Bytes > End) {
      grow(Bytes + Align);
      Aligned = (Cur + Align - 1) & ~(Align - 1);
    }
    Cur = Aligned + Bytes;
    Used += Bytes;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a \p T in the arena. \p T must be trivially destructible:
  /// reset() and the destructor free memory without running destructors.
  template <typename T, typename... Args> T *create(Args &&...ArgList) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena-allocated types must not need destructors");
    return new (allocate(sizeof(T), alignof(T))) T(std::forward<Args>(ArgList)...);
  }

  /// O(1) release of everything allocated since construction or the last
  /// reset. The largest block is kept so a recycled arena stops growing
  /// once it has seen its peak request.
  void reset() {
    if (Blocks.size() > 1) {
      // Keep only the largest block (the most recently grown one).
      Blocks.front() = std::move(Blocks.back());
      Blocks.resize(1);
    }
    if (!Blocks.empty()) {
      Cur = reinterpret_cast<uintptr_t>(Blocks.front().Data.get());
      End = Cur + Blocks.front().Bytes;
    }
    Used = 0;
  }

  /// Bytes handed out since the last reset (excludes alignment padding).
  size_t bytesUsed() const { return Used; }
  /// Total block capacity currently held.
  size_t bytesReserved() const {
    size_t N = 0;
    for (const Block &B : Blocks)
      N += B.Bytes;
    return N;
  }

private:
  struct Block {
    std::unique_ptr<char[]> Data;
    size_t Bytes = 0;
  };

  void grow(size_t AtLeast) {
    size_t Bytes = BlockBytes;
    while (Bytes < AtLeast)
      Bytes *= 2;
    // Geometric growth keeps the block count logarithmic in request size.
    BlockBytes = Bytes * 2;
    Blocks.push_back({std::make_unique<char[]>(Bytes), Bytes});
    Cur = reinterpret_cast<uintptr_t>(Blocks.back().Data.get());
    End = Cur + Bytes;
  }

  std::vector<Block> Blocks;
  uintptr_t Cur = 0, End = 0;
  size_t BlockBytes;
  size_t Used = 0;
};

} // namespace llstar

#endif // LLSTAR_RUNTIME_ARENA_H
