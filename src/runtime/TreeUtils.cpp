#include "runtime/TreeUtils.h"

#include "support/StringUtils.h"

using namespace llstar;

void llstar::walkTree(const ParseTree &Root, const TreeListener &Listener) {
  if (Listener.Enter && !Listener.Enter(Root))
    return;
  for (const auto &Child : Root.children())
    walkTree(*Child, Listener);
  if (Listener.Exit)
    Listener.Exit(Root);
}

std::vector<const ParseTree *>
llstar::collectRuleNodes(const ParseTree &Root, int32_t RuleIndex) {
  std::vector<const ParseTree *> Result;
  TreeListener L;
  L.Enter = [&](const ParseTree &N) {
    if (!N.isToken() && N.ruleIndex() == RuleIndex)
      Result.push_back(&N);
    return true;
  };
  walkTree(Root, L);
  return Result;
}

std::string llstar::treeText(const ParseTree &Root) {
  std::string Out;
  TreeListener L;
  L.Enter = [&](const ParseTree &N) {
    if (N.isToken()) {
      if (!Out.empty())
        Out += ' ';
      Out += N.token().Text;
    }
    return true;
  };
  walkTree(Root, L);
  return Out;
}

size_t llstar::treeDepth(const ParseTree &Root) {
  size_t Best = 0;
  for (const auto &Child : Root.children())
    Best = std::max(Best, treeDepth(*Child));
  return Best + 1;
}

static void renderIndented(const ParseTree &N, const Grammar &G,
                           size_t Depth, std::string &Out) {
  Out.append(Depth * 2, ' ');
  if (N.isToken())
    Out += "'" + escapeString(N.token().Text) + "' @" + N.token().Loc.str();
  else
    Out += N.ruleIndex() >= 0 ? G.rule(N.ruleIndex()).Name : "<scratch>";
  Out += '\n';
  for (const auto &Child : N.children())
    renderIndented(*Child, G, Depth + 1, Out);
}

std::string llstar::treeToIndentedString(const ParseTree &Root,
                                         const Grammar &G) {
  std::string Out;
  renderIndented(Root, G, 0, Out);
  return Out;
}

static void renderDot(const ParseTree &N, const Grammar &G, int &NextId,
                      int MyId, std::string &Out) {
  if (N.isToken())
    Out += formatString("  n%d [shape=box, label=\"%s\"];\n", MyId,
                        escapeString(N.token().Text).c_str());
  else
    Out += formatString(
        "  n%d [label=\"%s\"];\n", MyId,
        N.ruleIndex() >= 0 ? G.rule(N.ruleIndex()).Name.c_str() : "?");
  for (const auto &Child : N.children()) {
    int ChildId = ++NextId;
    Out += formatString("  n%d -> n%d;\n", MyId, ChildId);
    renderDot(*Child, G, NextId, ChildId, Out);
  }
}

std::string llstar::treeToDot(const ParseTree &Root, const Grammar &G) {
  std::string Out = "digraph parsetree {\n  node [fontname=monospace];\n";
  int NextId = 0;
  renderDot(Root, G, NextId, 0, Out);
  Out += "}\n";
  return Out;
}
