//===- peg/PackratParser.h - Packrat/PEG baseline parser --------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline of the paper's Sections 1 and 7: a packrat
/// parser interpreting the same grammar object model with PEG semantics —
/// ordered choice with unbounded backtracking, possessive (greedy,
/// non-backtracking) EBNF loops, and full memoization of (rule, position)
/// results. Running it against \ref LLStarParser on the same grammar and
/// input quantifies how much speculation LL(*) analysis removes.
///
/// Differences from LL(*) kept deliberately PEG-faithful:
///  - every choice speculates: alternatives are attempted in order and the
///    first to match wins (so `A -> a | ab` never uses its second
///    alternative);
///  - errors surface only at the very end, as "no viable alternative" at
///    the start of the failed region — packrat parsers cannot localize
///    errors the way deterministic parsers can (paper Section 1);
///  - embedded mutators never run during the speculative phase, so this
///    baseline ignores plain actions entirely (always-actions `{{...}}`
///    still run).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_PEG_PACKRATPARSER_H
#define LLSTAR_PEG_PACKRATPARSER_H

#include "grammar/Grammar.h"
#include "lexer/TokenStream.h"
#include "runtime/ParseTree.h"
#include "runtime/SemanticEnv.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <unordered_map>

namespace llstar {

/// Counters for one packrat parse.
struct PackratStats {
  int64_t RuleInvocations = 0;
  int64_t AltAttempts = 0;
  int64_t AltFailures = 0; ///< speculative attempts that were rewound
  int64_t MemoHits = 0;
  int64_t MemoMisses = 0;
  int64_t TokensTouched = 0; ///< highest stream index examined

  void reset() { *this = PackratStats(); }
};

/// A memoizing PEG interpreter over a \ref Grammar.
class PackratParser {
public:
  struct Options {
    /// Disable to expose the exponential worst case (paper Section 6.2).
    bool Memoize = true;
    /// Build a parse tree. Memoized *successes* are then not reusable (the
    /// memo stores extents, not trees), so recognition benchmarks should
    /// leave this off; failure memoization still applies.
    bool BuildTree = false;
    /// Abort a hopeless parse after this many rule invocations (guards the
    /// non-memoized exponential mode in benchmarks).
    int64_t MaxRuleInvocations = -1; ///< -1 = unlimited
  };

  PackratParser(const Grammar &G, TokenStream &Stream, SemanticEnv *Env,
                DiagnosticEngine &Diags);
  PackratParser(const Grammar &G, TokenStream &Stream, SemanticEnv *Env,
                DiagnosticEngine &Diags, Options Opts);

  /// Parses from \p RuleName (grammar start rule when empty). Returns the
  /// tree when Options::BuildTree, else null; \ref ok() reports success.
  std::unique_ptr<ParseTree> parse(const std::string &RuleName = "");

  bool ok() const { return LastParseOk; }
  const PackratStats &stats() const { return Stats; }

private:
  bool parseRule(int32_t RuleIndex, ParseTree *Parent);
  bool parseAlternative(const Alternative &A, ParseTree *Parent);
  bool parseElement(const Element &E, ParseTree *Parent);

  bool budgetExceeded() const {
    return Opts.MaxRuleInvocations >= 0 &&
           Stats.RuleInvocations > Opts.MaxRuleInvocations;
  }

  void touch() {
    if (Stats.TokensTouched < Stream.index() + 1)
      Stats.TokensTouched = Stream.index() + 1;
  }

  static uint64_t memoKey(int32_t Rule, int64_t Start) {
    return (uint64_t(uint32_t(Rule)) << 40) ^ uint64_t(Start);
  }

  const Grammar &G;
  TokenStream &Stream;
  SemanticEnv *Env;
  DiagnosticEngine &Diags;
  Options Opts;
  PackratStats Stats;
  std::unordered_map<uint64_t, int64_t> Memo; // key -> stop index or -1
  bool LastParseOk = false;
};

} // namespace llstar

#endif // LLSTAR_PEG_PACKRATPARSER_H
