#include "peg/PackratParser.h"

using namespace llstar;

PackratParser::PackratParser(const Grammar &G, TokenStream &Stream,
                             SemanticEnv *Env, DiagnosticEngine &Diags)
    : PackratParser(G, Stream, Env, Diags, Options()) {}

PackratParser::PackratParser(const Grammar &G, TokenStream &Stream,
                             SemanticEnv *Env, DiagnosticEngine &Diags,
                             Options Opts)
    : G(G), Stream(Stream), Env(Env), Diags(Diags), Opts(Opts) {}

std::unique_ptr<ParseTree> PackratParser::parse(const std::string &RuleName) {
  int32_t Rule = RuleName.empty() ? G.startRule() : G.findRule(RuleName);
  if (Rule < 0) {
    Diags.error("unknown start rule '" + RuleName + "'");
    LastParseOk = false;
    return nullptr;
  }
  Memo.clear();
  std::unique_ptr<ParseTree> Root;
  ParseTree *Parent = nullptr;
  if (Opts.BuildTree) {
    Root = ParseTree::ruleNode(Rule);
    Parent = Root.get();
  }
  int64_t Start = Stream.index();
  bool Ok = true;
  for (const Alternative &A : G.rule(Rule).Alts) {
    Stream.seek(Start);
    ++Stats.AltAttempts;
    if (parseAlternative(A, Parent)) {
      Ok = true;
      break;
    }
    ++Stats.AltFailures;
    if (Parent)
      Parent->truncateChildren(0); // roll back the failed attempt
    Ok = false;
  }
  if (!Ok) {
    // Packrat parsers detect failure only after trying everything; report
    // at the farthest point reached as the best available approximation.
    const Token &T = Stream.at(Stats.TokensTouched > 0
                                   ? Stats.TokensTouched - 1
                                   : Stream.index());
    Diags.error(T.Loc, "PEG parse failed near '" + T.Text + "'");
  }
  LastParseOk = Ok;
  return Root;
}

bool PackratParser::parseRule(int32_t RuleIndex, ParseTree *Parent) {
  ++Stats.RuleInvocations;
  if (budgetExceeded())
    return false;

  int64_t Start = Stream.index();
  uint64_t Key = memoKey(RuleIndex, Start);
  if (Opts.Memoize) {
    auto It = Memo.find(Key);
    if (It != Memo.end()) {
      // With tree building on, successful extents cannot be replayed (the
      // memo has no tree); re-parse those. Failures are always reusable.
      if (It->second < 0) {
        ++Stats.MemoHits;
        return false;
      }
      if (!Opts.BuildTree || !Parent) {
        ++Stats.MemoHits;
        Stream.seek(It->second);
        return true;
      }
    }
    ++Stats.MemoMisses;
  }

  ParseTree *Node = nullptr;
  size_t ParentArity = 0;
  if (Parent) {
    ParentArity = Parent->numChildren();
    Node = Parent->addChild(ParseTree::ruleNode(RuleIndex));
  }

  bool Ok = false;
  for (const Alternative &A : G.rule(RuleIndex).Alts) {
    Stream.seek(Start);
    ++Stats.AltAttempts;
    if (parseAlternative(A, Node)) {
      Ok = true;
      break;
    }
    ++Stats.AltFailures;
    // Roll back any children the failed attempt produced.
    if (Node)
      Node->truncateChildren(0);
  }

  if (!Ok && Parent)
    Parent->truncateChildren(ParentArity); // drop the failed rule node

  if (Opts.Memoize)
    Memo[Key] = Ok ? Stream.index() : -1;
  return Ok;
}

bool PackratParser::parseAlternative(const Alternative &A, ParseTree *Parent) {
  for (const Element &E : A.Elements)
    if (!parseElement(E, Parent))
      return false;
  return true;
}

bool PackratParser::parseElement(const Element &E, ParseTree *Parent) {
  if (budgetExceeded())
    return false;
  switch (E.Kind) {
  case ElementKind::TokenRef: {
    touch();
    if (Stream.LA(1) != E.TokType)
      return false;
    if (Parent)
      Parent->addChild(ParseTree::tokenNode(Stream.LT(1)));
    Stream.consume();
    return true;
  }
  case ElementKind::TokenSet: {
    touch();
    TokenType T = Stream.LA(1);
    bool InSet = E.TokSet.contains(T);
    if (T == TokenEof || (E.Negated ? InSet : !InSet))
      return false;
    if (Parent)
      Parent->addChild(ParseTree::tokenNode(Stream.LT(1)));
    Stream.consume();
    return true;
  }
  case ElementKind::RuleRef:
    return parseRule(E.RuleIndex, Parent);
  case ElementKind::SemPred: {
    if (E.MinPrecedence >= 0)
      return true; // precedence predicates are meaningless without rewrite
    if (Env)
      if (const SemanticEnv::Predicate *Fn = Env->findPredicate(E.Name))
        return (*Fn)();
    return true;
  }
  case ElementKind::SynPred: {
    // PEG and-predicate: match the fragment, consume nothing.
    int64_t Mark = Stream.index();
    bool Ok = parseRule(E.SynPredRule, nullptr);
    Stream.seek(Mark);
    return Ok;
  }
  case ElementKind::Action:
    if (E.AlwaysAction && Env)
      if (const SemanticEnv::Action *Fn = Env->findAction(E.Name))
        (*Fn)();
    return true;
  case ElementKind::Block: {
    auto TryAlts = [&](ParseTree *Node) -> bool {
      int64_t Start = Stream.index();
      for (const Alternative &A : E.Alts) {
        Stream.seek(Start);
        ++Stats.AltAttempts;
        if (parseAlternative(A, Node))
          return true;
        ++Stats.AltFailures;
        if (Node)
          Node->truncateChildren(0);
      }
      return false;
    };
    // NOTE: like any PEG, sub-alternative attempts that partially built
    // tree children must roll back; we parse block bodies into a scratch
    // node and splice on success.
    switch (E.Repeat) {
    case BlockRepeat::None: {
      if (!Parent)
        return TryAlts(nullptr);
      auto Scratch = ParseTree::ruleNode(-1);
      if (!TryAlts(Scratch.get()))
        return false;
      for (auto &C : Scratch->takeChildren())
        Parent->addChild(std::move(C));
      return true;
    }
    case BlockRepeat::Optional: {
      int64_t Mark = Stream.index();
      auto Scratch = Parent ? ParseTree::ruleNode(-1) : nullptr;
      if (TryAlts(Scratch.get())) {
        if (Parent)
          for (auto &C : Scratch->takeChildren())
            Parent->addChild(std::move(C));
        return true;
      }
      Stream.seek(Mark);
      return true;
    }
    case BlockRepeat::Star:
    case BlockRepeat::Plus: {
      int64_t Iterations = 0;
      while (true) {
        int64_t Mark = Stream.index();
        auto Scratch = Parent ? ParseTree::ruleNode(-1) : nullptr;
        if (!TryAlts(Scratch.get())) {
          Stream.seek(Mark);
          break;
        }
        if (Stream.index() == Mark)
          break; // epsilon body: stop (possessive loops must progress)
        if (Parent)
          for (auto &C : Scratch->takeChildren())
            Parent->addChild(std::move(C));
        ++Iterations;
      }
      return E.Repeat == BlockRepeat::Star || Iterations > 0;
    }
    }
    return false;
  }
  }
  return false;
}
