#include "dfa/LookaheadDFA.h"

#include "atn/ATN.h"
#include "support/StringUtils.h"

#include <deque>
#include <functional>

using namespace llstar;

std::set<int32_t> LookaheadDfa::reachableAlts() const {
  std::set<int32_t> Alts;
  for (const DfaState &S : States) {
    if (S.isAccept())
      Alts.insert(S.PredictedAlt);
    for (const DfaPredEdge &E : S.PredEdges)
      Alts.insert(E.Alt);
  }
  return Alts;
}

bool LookaheadDfa::shortestPathToAlt(int32_t Alt,
                                     std::vector<TokenType> &PathOut) const {
  PathOut.clear();
  if (States.empty())
    return false;
  auto Predicts = [&](const DfaState &S) {
    if (S.PredictedAlt == Alt)
      return true;
    for (const DfaPredEdge &E : S.PredEdges)
      if (E.Alt == Alt)
        return true;
    return false;
  };
  // BFS over terminal edges; Parent remembers (previous state, label).
  std::vector<std::pair<int32_t, TokenType>> Parent(States.size(),
                                                    {-2, TokenInvalid});
  std::deque<int32_t> Queue;
  Parent[0] = {-1, TokenInvalid};
  Queue.push_back(0);
  while (!Queue.empty()) {
    int32_t Id = Queue.front();
    Queue.pop_front();
    if (Predicts(States[size_t(Id)])) {
      for (int32_t At = Id; Parent[size_t(At)].first >= 0;
           At = Parent[size_t(At)].first)
        PathOut.push_back(Parent[size_t(At)].second);
      std::reverse(PathOut.begin(), PathOut.end());
      return true;
    }
    for (const DfaEdge &E : States[size_t(Id)].Edges)
      if (Parent[size_t(E.Target)].first == -2) {
        Parent[size_t(E.Target)] = {Id, E.Label};
        Queue.push_back(E.Target);
      }
  }
  return false;
}

int32_t LookaheadDfa::simulate(const std::vector<TokenType> &Input) const {
  if (States.empty())
    return -1;
  int32_t At = 0;
  size_t Pos = 0;
  // Past the end of the witness sentence the lookahead is EOF, exactly as
  // a token stream pads with EOF forever. Bound the walk so a (malformed)
  // EOF cycle cannot spin.
  for (size_t Step = 0; Step <= Input.size() + States.size(); ++Step) {
    const DfaState &S = States[size_t(At)];
    if (S.isAccept())
      return S.PredictedAlt;
    int32_t Next = S.edgeOn(Pos < Input.size() ? Input[Pos] : TokenEof);
    if (Next < 0) {
      // No terminal edge applies: predicate edges are tried in alternative
      // order; assume the first one holds.
      return S.PredEdges.empty() ? -1 : S.PredEdges.front().Alt;
    }
    At = Next;
    if (Pos < Input.size())
      ++Pos;
  }
  return -1;
}

void LookaheadDfa::finish() {
  HasSynPreds = HasSemPreds = false;
  for (const DfaState &S : States) {
    for (const DfaPredEdge &E : S.PredEdges) {
      if (E.Pred.isSyntactic())
        HasSynPreds = true;
      else if (E.Pred.K == SemanticContext::Kind::Pred)
        HasSemPreds = true;
    }
  }
  bool Cyclic = computeCyclic();
  if (HasSynPreds)
    Class = DecisionClass::Backtrack;
  else if (Cyclic)
    Class = DecisionClass::Cyclic;
  else
    Class = DecisionClass::FixedK;
  FixedK = Cyclic ? -1 : computeDepth();
}

bool LookaheadDfa::computeCyclic() const {
  // DFS from state 0 over terminal edges looking for a back edge.
  enum Color : char { White, Gray, Black };
  std::vector<char> Colors(States.size(), White);
  std::function<bool(int32_t)> Visit = [&](int32_t S) -> bool {
    Colors[size_t(S)] = Gray;
    for (const DfaEdge &E : States[size_t(S)].Edges) {
      if (Colors[size_t(E.Target)] == Gray)
        return true;
      if (Colors[size_t(E.Target)] == White && Visit(E.Target))
        return true;
    }
    Colors[size_t(S)] = Black;
    return false;
  };
  return !States.empty() && Visit(0);
}

int32_t LookaheadDfa::computeDepth() const {
  // Longest terminal-edge path from the start; the DFA is acyclic here.
  std::vector<int32_t> Memo(States.size(), -1);
  std::function<int32_t(int32_t)> Depth = [&](int32_t S) -> int32_t {
    if (Memo[size_t(S)] >= 0)
      return Memo[size_t(S)];
    int32_t Best = 0;
    for (const DfaEdge &E : States[size_t(S)].Edges)
      Best = std::max(Best, 1 + Depth(E.Target));
    Memo[size_t(S)] = Best;
    return Best;
  };
  if (States.empty())
    return 1;
  // Even a pure-predicate decision inspects the state of the parse; count
  // it as depth 1 like ANTLR reports LL(1).
  return std::max(1, Depth(0));
}

std::string llstar::describePredicate(const SemanticContext &Pred,
                                      const Atn &M) {
  switch (Pred.K) {
  case SemanticContext::Kind::None:
    return "<none>";
  case SemanticContext::Kind::Pred: {
    const AtnPredicate &P = M.predicate(Pred.A);
    if (P.isPrecedence())
      return formatString("{prec<=%d}?", P.MinPrecedence);
    return "{" + P.Name + "}?";
  }
  case SemanticContext::Kind::SynPredRule:
    return "synpred(" + M.grammar().rule(Pred.A).Name + ")";
  case SemanticContext::Kind::SynPredAlt:
    return formatString("backtrack(d=%d,alt=%d)", Pred.A, Pred.B);
  }
  return "?";
}

std::string LookaheadDfa::str(const Atn &M) const {
  const Vocabulary &V = M.grammar().vocabulary();
  std::string Out;
  for (const DfaState &S : States) {
    if (S.isAccept()) {
      Out += formatString("s%d => %d\n", S.Id, S.PredictedAlt);
      continue;
    }
    for (const DfaEdge &E : S.Edges)
      Out += formatString("s%d -%s-> s%d\n", S.Id, V.name(E.Label).c_str(),
                          E.Target);
    for (const DfaPredEdge &E : S.PredEdges)
      Out += formatString("s%d -%s-> s%d\n", S.Id,
                          describePredicate(E.Pred, M).c_str(), E.Target);
  }
  return Out;
}

std::string LookaheadDfa::dot(const Atn &M) const {
  const Vocabulary &V = M.grammar().vocabulary();
  std::string Out = "digraph decision_" + std::to_string(Decision) + " {\n"
                    "  rankdir=LR;\n";
  for (const DfaState &S : States) {
    if (S.isAccept())
      Out += formatString(
          "  s%d [shape=doublecircle, label=\"s%d=>%d\"];\n", S.Id, S.Id,
          S.PredictedAlt);
    else
      Out += formatString("  s%d [shape=circle];\n", S.Id);
  }
  for (const DfaState &S : States) {
    for (const DfaEdge &E : S.Edges)
      Out += formatString("  s%d -> s%d [label=\"%s\"];\n", S.Id, E.Target,
                          escapeString(V.name(E.Label)).c_str());
    for (const DfaPredEdge &E : S.PredEdges)
      Out += formatString(
          "  s%d -> s%d [label=\"%s\", style=dashed];\n", S.Id, E.Target,
          escapeString(describePredicate(E.Pred, M)).c_str());
  }
  Out += "}\n";
  return Out;
}
