//===- dfa/LookaheadDFA.h - Lookahead DFA (paper Def. 4) --------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lookahead DFA produced by the LL(*) analysis for one parsing
/// decision: a DFA over token types, augmented with predicate transitions
/// that target accept states, and accept states that yield predicted
/// production numbers (paper Definition 4 and Figure 5).
///
/// At parse time (\ref llstar::LLStarParser::adaptivePredict) the parser
/// walks terminal edges while they match the remaining input; when no
/// terminal edge applies, it tries the state's predicate edges in
/// alternative order; reaching an accept state predicts that state's
/// alternative.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_DFA_LOOKAHEADDFA_H
#define LLSTAR_DFA_LOOKAHEADDFA_H

#include "dfa/SemanticContext.h"
#include "lexer/Token.h"

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace llstar {

class Atn;
class Vocabulary;

/// A terminal transition of a lookahead DFA.
struct DfaEdge {
  TokenType Label = TokenInvalid;
  int32_t Target = -1;
};

/// A predicate transition; always targets an accept state (paper Def. 4).
struct DfaPredEdge {
  SemanticContext Pred;
  int32_t Target = -1;
  /// Alternative predicted when the predicate holds (== accept state's alt).
  int32_t Alt = -1;
};

/// One lookahead-DFA state.
struct DfaState {
  int32_t Id = -1;
  /// Predicted alternative (1-based) when this is an accept state, else -1.
  int32_t PredictedAlt = -1;
  std::vector<DfaEdge> Edges;
  /// Tested in order after terminal edges fail; order follows alternative
  /// precedence, resolving predicated ambiguities in favor of lower
  /// alternatives (paper Section 3.1).
  std::vector<DfaPredEdge> PredEdges;

  bool isAccept() const { return PredictedAlt > 0; }

  /// Returns the target on \p Label, or -1.
  int32_t edgeOn(TokenType Label) const {
    for (const DfaEdge &E : Edges)
      if (E.Label == Label)
        return E.Target;
    return -1;
  }
};

/// How a decision ended up classified after analysis (Table 1 columns).
enum class DecisionClass : uint8_t {
  FixedK,    ///< Acyclic DFA: plain LL(k) for the computed k.
  Cyclic,    ///< Cyclic DFA: arbitrary regular lookahead, no backtracking.
  Backtrack, ///< Contains syntactic-predicate edges: may backtrack.
};

/// The lookahead DFA for one parsing decision.
class LookaheadDfa {
public:
  explicit LookaheadDfa(int32_t Decision) : Decision(Decision) {}

  int32_t decision() const { return Decision; }

  int32_t addState() {
    DfaState S;
    S.Id = int32_t(States.size());
    States.push_back(std::move(S));
    return int32_t(States.size()) - 1;
  }

  DfaState &state(int32_t Id) { return States[size_t(Id)]; }
  const DfaState &state(int32_t Id) const { return States[size_t(Id)]; }
  const DfaState &start() const { return States[0]; }
  size_t numStates() const { return States.size(); }

  /// Classification and the fixed lookahead depth; computed by \ref finish.
  DecisionClass decisionClass() const { return Class; }
  /// Max lookahead depth for FixedK decisions (>= 1), or -1 when cyclic.
  int32_t fixedK() const { return FixedK; }
  bool hasSynPredEdges() const { return HasSynPreds; }
  bool hasSemPredEdges() const { return HasSemPreds; }

  /// True if analysis gave up on full LL(*) construction and produced the
  /// LL(1)-with-predicates fallback (paper Sections 5.3-5.4).
  bool usedFallback() const { return UsedFallback; }
  void setUsedFallback() { UsedFallback = true; }

  /// True if closure hit the recursion-depth limit m somewhere.
  bool overflowed() const { return Overflowed; }
  void setOverflowed() { Overflowed = true; }

  /// Computes classification, cyclicity, and fixed k. Call once after all
  /// states and edges exist.
  void finish();

  /// Alternatives this DFA can actually predict: every accept state's
  /// alternative plus every predicate edge's. A decision alternative
  /// missing here can never be chosen at runtime (it is dead/shadowed).
  std::set<int32_t> reachableAlts() const;

  /// Shortest terminal-label path from the start state to a prediction of
  /// \p Alt (an accept state, or a state with a predicate edge for it).
  /// Returns false if no such path exists. An empty \p PathOut means the
  /// start state itself already predicts \p Alt.
  bool shortestPathToAlt(int32_t Alt, std::vector<TokenType> &PathOut) const;

  /// Walks terminal edges over \p Input from the start state as the
  /// runtime predictor would, and returns the predicted alternative: the
  /// alternative of the first accept state reached, or the first predicate
  /// edge's alternative when terminal edges run out, or -1 when the walk
  /// is inconclusive. Used to validate diagnostic witnesses.
  int32_t simulate(const std::vector<TokenType> &Input) const;

  /// Text rendering, one edge per line; stable across runs, used by tests.
  std::string str(const Atn &M) const;
  /// Graphviz rendering.
  std::string dot(const Atn &M) const;

private:
  bool computeCyclic() const;
  int32_t computeDepth() const;

  int32_t Decision;
  std::vector<DfaState> States;
  DecisionClass Class = DecisionClass::FixedK;
  int32_t FixedK = 1;
  bool HasSynPreds = false;
  bool HasSemPreds = false;
  bool UsedFallback = false;
  bool Overflowed = false;
};

/// Renders \p Pred for humans ("{isType}?", "synpred(__synpred1_t)",
/// "backtrack(d=3,alt=2)").
std::string describePredicate(const SemanticContext &Pred, const Atn &M);

} // namespace llstar

#endif // LLSTAR_DFA_LOOKAHEADDFA_H
