//===- dfa/SemanticContext.h - Predicate context for DFA edges --*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate attached to an ATN configuration or a lookahead-DFA
/// predicate edge (paper Definition 4). Three flavors exist:
///
///  - \c Pred: a semantic predicate `{p}?` (including the precedence
///    predicates synthesized by the left-recursion rewrite), identified by
///    its index in the ATN predicate table;
///  - \c SynPredRule: a user-written syntactic predicate `(alpha)=>`,
///    evaluated by speculatively parsing a hidden fragment rule (the
///    synpred(A'_i) reduction of paper Section 4.1);
///  - \c SynPredAlt: an auto-inserted PEG-mode syntactic predicate on
///    alternative B of decision A, evaluated by speculatively parsing that
///    alternative in place (paper Section 2, option backtrack=true).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_DFA_SEMANTICCONTEXT_H
#define LLSTAR_DFA_SEMANTICCONTEXT_H

#include <cstdint>
#include <functional>

namespace llstar {

/// A (possibly absent) predicate gating a prediction path.
struct SemanticContext {
  enum class Kind : uint8_t {
    None,        ///< No predicate.
    Pred,        ///< Semantic predicate; A = ATN predicate index.
    SynPredRule, ///< Syntactic predicate; A = fragment rule index.
    SynPredAlt,  ///< Auto-backtrack; A = decision, B = alternative.
  };

  Kind K = Kind::None;
  int32_t A = -1;
  int32_t B = -1;

  static SemanticContext none() { return {}; }
  static SemanticContext pred(int32_t PredIndex) {
    return {Kind::Pred, PredIndex, -1};
  }
  static SemanticContext synPredRule(int32_t FragmentRule) {
    return {Kind::SynPredRule, FragmentRule, -1};
  }
  static SemanticContext synPredAlt(int32_t Decision, int32_t Alt) {
    return {Kind::SynPredAlt, Decision, Alt};
  }

  bool isNone() const { return K == Kind::None; }
  bool isSyntactic() const {
    return K == Kind::SynPredRule || K == Kind::SynPredAlt;
  }

  friend bool operator==(const SemanticContext &X, const SemanticContext &Y) {
    return X.K == Y.K && X.A == Y.A && X.B == Y.B;
  }
  friend bool operator!=(const SemanticContext &X, const SemanticContext &Y) {
    return !(X == Y);
  }
  friend bool operator<(const SemanticContext &X, const SemanticContext &Y) {
    if (X.K != Y.K)
      return X.K < Y.K;
    if (X.A != Y.A)
      return X.A < Y.A;
    return X.B < Y.B;
  }

  size_t hash() const {
    return (size_t(K) * 0x9e3779b9u) ^ (size_t(uint32_t(A)) << 1) ^
           (size_t(uint32_t(B)) << 17);
  }
};

} // namespace llstar

#endif // LLSTAR_DFA_SEMANTICCONTEXT_H
