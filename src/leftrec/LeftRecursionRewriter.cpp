#include "leftrec/LeftRecursionRewriter.h"

#include <cassert>

using namespace llstar;

namespace {

/// How one original alternative participates in the rewrite.
enum class AltShape {
  Primary, ///< no edge self-reference: loop head as-is
  Prefix,  ///< ends with a self-reference: loop head, operand constrained
  Binary,  ///< starts and ends with self-references: loop body
  Suffix,  ///< starts with a self-reference only: loop body
};

bool isSelfRef(const Element &E, int32_t Rule) {
  return E.Kind == ElementKind::RuleRef && E.RuleIndex == Rule;
}

/// Strips a leading `{assoc=right}` marker; returns true if present.
bool takeRightAssocMarker(Alternative &A) {
  if (A.Elements.empty())
    return false;
  const Element &E = A.Elements.front();
  if (E.Kind != ElementKind::Action || E.Name != "assoc=right")
    return false;
  A.Elements.erase(A.Elements.begin());
  return true;
}

/// Replaces self-references embedded anywhere in \p E (inside blocks, or
/// at non-operand positions) with unconstrained (precedence 0) calls.
void clearEmbeddedPrecedence(Element &E, int32_t Rule) {
  if (isSelfRef(E, Rule))
    E.Precedence = 0;
  for (Alternative &A : E.Alts)
    for (Element &Sub : A.Elements)
      clearEmbeddedPrecedence(Sub, Rule);
}

class Rewriter {
public:
  Rewriter(Grammar &G, DiagnosticEngine &Diags) : G(G), Diags(Diags) {}

  int32_t run() {
    int32_t Rewritten = 0;
    for (size_t R = 0; R < G.numRules(); ++R)
      if (rewriteRule(int32_t(R)))
        ++Rewritten;
    return Rewritten;
  }

private:
  bool rewriteRule(int32_t RuleIndex) {
    Rule &R = G.rule(RuleIndex);

    bool AnyLeftRec = false;
    for (const Alternative &A : R.Alts)
      if (!A.Elements.empty() && isSelfRef(A.Elements.front(), RuleIndex))
        AnyLeftRec = true;
    if (!AnyLeftRec)
      return false;

    int32_t N = int32_t(R.Alts.size());
    std::vector<Alternative> Head; // primary + prefix alternatives
    std::vector<Alternative> Loop; // binary + suffix alternatives

    for (int32_t I = 0; I < N; ++I) {
      Alternative A = R.Alts[size_t(I)]; // copy; we will edit
      bool RightAssoc = takeRightAssocMarker(A);
      int32_t Level = N - I; // alternative order encodes precedence

      bool StartsSelf =
          !A.Elements.empty() && isSelfRef(A.Elements.front(), RuleIndex);
      bool EndsSelf = A.Elements.size() >= 2 &&
                      isSelfRef(A.Elements.back(), RuleIndex);
      AltShape Shape = StartsSelf
                           ? (EndsSelf ? AltShape::Binary : AltShape::Suffix)
                           : (EndsSelf ? AltShape::Prefix : AltShape::Primary);

      if (StartsSelf && A.Elements.size() == 1) {
        Diags.error(A.Loc, "rule '" + R.Name +
                               "' has a bare self-reference alternative");
        return false;
      }
      if (RightAssoc && Shape != AltShape::Binary)
        Diags.warning(A.Loc, "{assoc=right} only applies to binary "
                             "alternatives; ignored");

      switch (Shape) {
      case AltShape::Primary: {
        for (Element &E : A.Elements)
          clearEmbeddedPrecedence(E, RuleIndex);
        Head.push_back(std::move(A));
        break;
      }
      case AltShape::Prefix: {
        // op... e  ->  op... e[Level]  (the operand binds at least as
        // tightly as this operator).
        for (size_t J = 0; J + 1 < A.Elements.size(); ++J)
          clearEmbeddedPrecedence(A.Elements[J], RuleIndex);
        A.Elements.back().Precedence = Level;
        Head.push_back(std::move(A));
        break;
      }
      case AltShape::Binary: {
        // e op... e  ->  {p<=Level-1}? op... e[Level]   (left assoc)
        //                {p<=Level-1}? op... e[Level-1] (right assoc)
        Alternative B;
        B.Loc = A.Loc;
        B.Elements.push_back(Element::precPred(Level - 1, A.Loc));
        for (size_t J = 1; J + 1 < A.Elements.size(); ++J) {
          clearEmbeddedPrecedence(A.Elements[J], RuleIndex);
          B.Elements.push_back(std::move(A.Elements[J]));
        }
        Element Operand = std::move(A.Elements.back());
        Operand.Precedence = RightAssoc ? Level - 1 : Level;
        B.Elements.push_back(std::move(Operand));
        Loop.push_back(std::move(B));
        break;
      }
      case AltShape::Suffix: {
        // e op...  ->  {p<=Level-1}? op...
        Alternative S;
        S.Loc = A.Loc;
        S.Elements.push_back(Element::precPred(Level - 1, A.Loc));
        for (size_t J = 1; J < A.Elements.size(); ++J) {
          clearEmbeddedPrecedence(A.Elements[J], RuleIndex);
          S.Elements.push_back(std::move(A.Elements[J]));
        }
        Loop.push_back(std::move(S));
        break;
      }
      }
    }

    if (Head.empty()) {
      Diags.error(R.Loc, "rule '" + R.Name +
                             "' has no non-left-recursive alternative");
      return false;
    }
    assert(!Loop.empty() && "left-recursive rule must contribute loop alts");

    // New body: ( head-alts ) ( loop-alts )*
    Alternative Body;
    Body.Loc = R.Loc;
    if (Head.size() == 1 && Head[0].Elements.size() >= 1) {
      // Single head alternative: splice it directly.
      for (Element &E : Head[0].Elements)
        Body.Elements.push_back(std::move(E));
    } else {
      Body.Elements.push_back(
          Element::block(std::move(Head), BlockRepeat::None, R.Loc));
    }
    Body.Elements.push_back(
        Element::block(std::move(Loop), BlockRepeat::Star, R.Loc));

    R.Alts.clear();
    R.Alts.push_back(std::move(Body));
    R.IsPrecedenceRule = true;
    return true;
  }

  Grammar &G;
  DiagnosticEngine &Diags;
};

} // namespace

int32_t llstar::rewriteLeftRecursion(Grammar &G, DiagnosticEngine &Diags) {
  return Rewriter(G, Diags).run();
}
