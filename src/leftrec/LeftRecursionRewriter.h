//===- leftrec/LeftRecursionRewriter.h - Precedence rewrite -----*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 1.1 extension: rules with immediate left recursion
/// (self-referential rules) are rewritten into an equivalent predicated
/// loop that compares operator precedences (following Hansen's compact
/// recursive-descent expression parsing). The paper's example
///
/// \code
///   e : e '*' e | e '+' e | INT ;
/// \endcode
///
/// becomes (conceptually)
///
/// \code
///   e[int p] : INT ( {p<=2}? '*' e[3] | {p<=1}? '+' e[2] )* ;
/// \endcode
///
/// Alternative order encodes precedence, highest first. Binary and suffix
/// alternatives move into the loop gated by precedence predicates; primary
/// and prefix alternatives form the loop head. Binary operators are
/// left-associative by default; prefix an alternative with the action
/// marker `{assoc=right}` to make it right-associative.
///
/// The rewrite runs automatically in \ref AnalyzedGrammar::analyze before
/// validation, so grammar authors can write left-recursive expression
/// rules directly.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_LEFTREC_LEFTRECURSIONREWRITER_H
#define LLSTAR_LEFTREC_LEFTRECURSIONREWRITER_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

namespace llstar {

/// Rewrites every immediately left-recursive rule of \p G in place.
/// Returns the number of rules rewritten. Unsupported shapes (a bare
/// `a : a ;` self-loop, hidden left recursion behind a nullable prefix)
/// produce errors on \p Diags; indirect left recursion is left for
/// \ref Grammar::validate to reject.
int32_t rewriteLeftRecursion(Grammar &G, DiagnosticEngine &Diags);

} // namespace llstar

#endif // LLSTAR_LEFTREC_LEFTRECURSIONREWRITER_H
