#include "recover/ErrorStrategy.h"

using namespace llstar;

ErrorStrategy::~ErrorStrategy() = default;

RepairAction ErrorStrategy::onMismatch(const RepairContext &Ctx) {
  // Deletion first: if the very next token is what we wanted, the current
  // one is almost certainly spurious.
  if (Ctx.Next != TokenEof && Ctx.Expected.contains(Ctx.Next))
    return RepairAction::DeleteToken;
  // Insertion: conjure the expected token when the current one could
  // legally follow it. Never conjure EOF, and stop conjuring when a run of
  // insertions has made no input progress (termination guard).
  if (Ctx.InsertionsSinceConsume < 32 && !Ctx.Expected.empty() &&
      Ctx.Expected.max() >= TokenMinUserType &&
      Ctx.ViableAfter.contains(Ctx.Current))
    return RepairAction::InsertToken;
  return RepairAction::SyncAndReturn;
}
