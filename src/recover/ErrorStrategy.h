//===- recover/ErrorStrategy.h - Pluggable repair policy --------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair-policy seam of the error-recovering runtime. When the LL(*)
/// parser hits a mismatched token outside speculation, it packages the
/// local facts (current/next token, expected set, the viable-follow set
/// past the expected token, the combined rule-stack recovery set) into a
/// \ref RepairContext and asks the strategy what to do:
///
///   - DeleteToken:   drop the current token as spurious and re-match,
///   - InsertToken:   conjure the expected token and continue without
///                    consuming,
///   - SyncAndReturn: give up locally; the enclosing rule consumes to its
///                    recovery set and returns (panic mode).
///
/// The base class implements the classic ANTLR default (deletion when
/// LA(2) matches, insertion when LA(1) is viable after the repair, panic
/// otherwise); override \ref onMismatch to customize. Strategies must be
/// stateless or externally synchronized — one parser instance calls them
/// from one thread, but a strategy object may be shared across parsers.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RECOVER_ERRORSTRATEGY_H
#define LLSTAR_RECOVER_ERRORSTRATEGY_H

#include "lexer/Token.h"
#include "support/IntervalSet.h"

#include <cstdint>

namespace llstar {

/// What the parser should do about one mismatched token.
enum class RepairAction : uint8_t {
  Fail,          ///< No repair; propagate failure (recovery disabled).
  DeleteToken,   ///< Consume the offending token and re-match.
  InsertToken,   ///< Conjure the expected token; do not consume.
  SyncAndReturn, ///< Panic: sync the enclosing rule to its recovery set.
};

/// Everything a strategy may consult for one mismatch event.
struct RepairContext {
  TokenType Current = TokenInvalid; ///< LA(1), the offending token
  TokenType Next = TokenInvalid;    ///< LA(2)
  /// Token types the failed transition would have matched.
  const IntervalSet &Expected;
  /// Tokens viable after a successful match, chained through the dynamic
  /// rule stack by nullability — the test for insertion repairs.
  const IntervalSet &ViableAfter;
  /// Conjured tokens since the last real consume; strategies should stop
  /// inserting once this grows (the parser also hard-caps it).
  int32_t InsertionsSinceConsume = 0;
};

/// The default single-token repair policy; subclass to customize.
class ErrorStrategy {
public:
  virtual ~ErrorStrategy();

  /// Decides the repair for one mismatched token. Never called while
  /// speculating or with recovery disabled.
  virtual RepairAction onMismatch(const RepairContext &Ctx);
};

} // namespace llstar

#endif // LLSTAR_RECOVER_ERRORSTRATEGY_H
