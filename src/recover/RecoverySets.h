//===- recover/RecoverySets.h - Follow/recovery set tables ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-ATN-state synchronization tables for error recovery, computed once
/// at analysis time (the generator-computed recovery tables of classic
/// ANTLR, derived here from the ATN instead of grammar productions).
///
/// For every ATN state s two facts are derived by fixpoint:
///
///   - follow(s): the set of token types that can be consumed first on any
///     path from s to the stop state of s's rule (a local FOLLOW/FIRST of
///     the rule suffix starting at s), and
///   - reachesEnd(s): whether s can reach the rule stop without consuming
///     anything (nullability of that suffix).
///
/// At parse time the runtime combines follow(s) over the dynamic
/// rule-invocation stack — the follow states pushed at each Rule
/// transition — to form the panic-mode recovery set, and chains
/// reachesEnd(s) through the stack to decide whether the current token is
/// viable after a conjured (single-token-insertion) repair.
///
/// Tables are immutable after construction and safe to share across
/// threads (the parse service shares one AnalyzedGrammar per bundle).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_RECOVER_RECOVERYSETS_H
#define LLSTAR_RECOVER_RECOVERYSETS_H

#include "atn/ATN.h"
#include "support/IntervalSet.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace llstar {

/// Immutable follow/recovery tables, one entry per ATN state.
class RecoverySets {
public:
  /// Runs the fixpoint over \p M. O(states x tokens) per iteration; the
  /// iteration count is bounded by the ATN's rule-call depth in practice.
  static std::unique_ptr<RecoverySets> compute(const Atn &M);

  /// Assembles from deserialized tables (the bundle loader's entry point).
  /// Sizes must already be validated against the ATN.
  static std::unique_ptr<RecoverySets>
  fromTables(std::vector<IntervalSet> Follow, std::vector<uint8_t> ReachesEnd);

  size_t numStates() const { return Follow.size(); }

  /// Tokens consumable first on any path from \p State to its rule stop.
  const IntervalSet &follow(int32_t State) const {
    return Follow[size_t(State)];
  }

  /// True if \p State can reach its rule stop without consuming input.
  bool reachesEnd(int32_t State) const {
    return ReachesEnd[size_t(State)] != 0;
  }

  bool operator==(const RecoverySets &O) const {
    return Follow == O.Follow && ReachesEnd == O.ReachesEnd;
  }

private:
  RecoverySets() = default;

  std::vector<IntervalSet> Follow;
  std::vector<uint8_t> ReachesEnd;
};

} // namespace llstar

#endif // LLSTAR_RECOVER_RECOVERYSETS_H
