#include "recover/RecoverySets.h"

using namespace llstar;

std::unique_ptr<RecoverySets> RecoverySets::compute(const Atn &M) {
  auto RS = std::unique_ptr<RecoverySets>(new RecoverySets());
  const size_t N = M.numStates();
  RS->Follow.resize(N);
  RS->ReachesEnd.assign(N, 0);

  std::vector<IntervalSet> &Follow = RS->Follow;
  std::vector<uint8_t> &End = RS->ReachesEnd;

  // Monotone fixpoint: both tables only grow, and IntervalSet::size is the
  // member count, so a stable total size means a stable solution.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t S = 0; S < N; ++S) {
      const AtnState &St = M.state(int32_t(S));
      if (St.Kind == AtnStateKind::RuleStop) {
        if (!End[S]) {
          End[S] = 1;
          Changed = true;
        }
        continue;
      }
      int64_t SizeBefore = Follow[S].size();
      uint8_t EndBefore = End[S];
      for (const AtnTransition &T : St.Transitions) {
        switch (T.Kind) {
        case AtnTransitionKind::Atom:
          Follow[S].add(T.Label);
          break;
        case AtnTransitionKind::Set:
          Follow[S].addSet(T.Labels);
          break;
        case AtnTransitionKind::Rule: {
          // FIRST of the callee; when the callee is nullable, also what
          // follows the call site.
          int32_t Entry = M.ruleStart(T.RuleIndex);
          Follow[S].addSet(Follow[size_t(Entry)]);
          if (End[size_t(Entry)]) {
            Follow[S].addSet(Follow[size_t(T.FollowState)]);
            End[S] |= End[size_t(T.FollowState)];
          }
          break;
        }
        case AtnTransitionKind::Epsilon:
        case AtnTransitionKind::SynPred:
        case AtnTransitionKind::SemPred:
        case AtnTransitionKind::Action:
          // Predicates and actions consume nothing; treat as epsilon (a
          // failed predicate falls back to panic recovery anyway).
          Follow[S].addSet(Follow[size_t(T.Target)]);
          End[S] |= End[size_t(T.Target)];
          break;
        }
      }
      if (Follow[S].size() != SizeBefore || End[S] != EndBefore)
        Changed = true;
    }
  }
  return RS;
}

std::unique_ptr<RecoverySets>
RecoverySets::fromTables(std::vector<IntervalSet> Follow,
                         std::vector<uint8_t> ReachesEnd) {
  auto RS = std::unique_ptr<RecoverySets>(new RecoverySets());
  RS->Follow = std::move(Follow);
  RS->ReachesEnd = std::move(ReachesEnd);
  return RS;
}
