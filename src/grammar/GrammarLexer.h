//===- grammar/GrammarLexer.h - Meta-language tokenizer ---------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written tokenizer for the ANTLR-like grammar meta-language read by
/// \ref GrammarParser. (The DFA lexer in src/lexer tokenizes the *target*
/// language; this one tokenizes grammar files themselves.)
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_GRAMMAR_GRAMMARLEXER_H
#define LLSTAR_GRAMMAR_GRAMMARLEXER_H

#include "support/Diagnostics.h"
#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// Token kinds of the grammar meta-language.
enum class MetaKind : uint8_t {
  Ident,    ///< rule / token / keyword identifier
  StrLit,   ///< 'text' (Text holds the unescaped value)
  CharSet,  ///< [a-z...] (Text holds the raw inner text, escapes intact)
  Action,   ///< { ... } (Text holds the trimmed inner text)
  Colon,    ///< :
  Semi,     ///< ;
  Pipe,     ///< |
  LParen,   ///< (
  RParen,   ///< )
  Question, ///< ?
  Star,     ///< *
  Plus,     ///< +
  Tilde,    ///< ~
  Dot,      ///< .
  Range,    ///< ..
  Arrow,    ///< ->
  DArrow,   ///< =>
  Eof,
};

/// One meta-language token.
struct MetaToken {
  MetaKind Kind = MetaKind::Eof;
  std::string Text;
  SourceLocation Loc;
  /// Byte range [Offset, EndOffset) of the token in the source text.
  /// Source rewriting (lint auto-fixes) splices by these, so they cover
  /// the raw spelling including quotes/brackets, not the decoded Text.
  size_t Offset = 0;
  size_t EndOffset = 0;
  /// Action only: the action was written `{{ ... }}` (always-action).
  bool DoubleBrace = false;
};

/// Tokenizes grammar-file text. Returns the token vector ending in Eof;
/// problems go to \p Diags (lexing continues past errors).
std::vector<MetaToken> lexGrammarText(std::string_view Text,
                                      DiagnosticEngine &Diags);

/// Printable name of a meta-token kind, for error messages.
const char *metaKindName(MetaKind Kind);

} // namespace llstar

#endif // LLSTAR_GRAMMAR_GRAMMARLEXER_H
