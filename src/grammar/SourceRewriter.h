//===- grammar/SourceRewriter.h - Span-faithful grammar edits ---*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-exact source spans over a grammar file, computed from the meta
/// lexer's token stream. The lint auto-fix engine edits grammar *source*,
/// not the parsed Grammar object — fixes must preserve every byte the fix
/// does not own (comments, layout, unrelated rules) so a dry-run diff is
/// honest and an applied fix is reviewable. This class answers "which
/// bytes spell rule R / alternative N of R / the syntactic predicate at
/// location L", leaving the splicing to the caller.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_GRAMMAR_SOURCEREWRITER_H
#define LLSTAR_GRAMMAR_SOURCEREWRITER_H

#include "grammar/GrammarLexer.h"
#include "support/SourceLocation.h"

#include <string>
#include <string_view>
#include <vector>

namespace llstar {

/// A half-open byte range [Begin, End) of the source text.
struct SourceSpan {
  size_t Begin = 0;
  size_t End = 0;
  bool valid() const { return End > Begin; }
  size_t length() const { return End - Begin; }
};

/// Token-level index over one grammar source file.
class SourceRewriter {
public:
  /// Lexes \p Source and indexes rule boundaries. Lexing problems leave
  /// ok() false; span queries then return invalid spans.
  explicit SourceRewriter(std::string_view Source);

  bool ok() const { return Ok; }
  std::string_view text() const { return Source; }

  /// The whole definition of rule \p Name: from its `fragment` keyword or
  /// name token through the closing `;`, extended over one trailing
  /// newline (plus the line's leading indentation) so deleting the span
  /// removes the rule's lines, not just its characters. Invalid when the
  /// rule is not defined in this source (e.g. synthesized literal rules).
  SourceSpan ruleSpan(const std::string &Name) const;

  /// Byte ranges of the top-level alternative bodies of rule \p Name, in
  /// declaration order — the text between `:` / `|` separators, trimmed
  /// of surrounding whitespace. An empty (epsilon) alternative yields a
  /// zero-length span at its position. Empty vector when the rule is
  /// unknown.
  std::vector<SourceSpan> altSpans(const std::string &Name) const;

  /// The `( ... )=>` syntactic-predicate element whose `(` token is at
  /// \p Loc, extended over trailing spaces/tabs so deleting it does not
  /// leave doubled blanks. Invalid when no predicate starts there.
  SourceSpan synPredSpan(SourceLocation Loc) const;

  /// Every reference to token \p Name inside rule bodies (definition
  /// sites excluded).
  std::vector<SourceSpan> tokenRefSpans(const std::string &Name) const;

private:
  struct RuleEntry {
    std::string Name;
    size_t FirstTok = 0; ///< index of `fragment` or the name token
    size_t LastTok = 0;  ///< index of the `;`
  };

  const RuleEntry *findRule(const std::string &Name) const;

  std::string Source;
  std::vector<MetaToken> Tokens;
  std::vector<RuleEntry> Rules;
  bool Ok = false;
};

} // namespace llstar

#endif // LLSTAR_GRAMMAR_SOURCEREWRITER_H
