//===- grammar/GrammarParser.h - Meta-language parser -----------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the ANTLR-like grammar meta-language into a \ref Grammar.
///
/// Supported input (yacc-like syntax with EBNF, paper Section 2):
/// \code
///   grammar T;
///   options { backtrack=true; memoize=true; m=1; }
///   tokens { EXTERNAL_TOKEN; }
///
///   s    : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
///   expr : INT | '-' expr ;
///   t    : ('-'* ID)=> '-'* ID | expr ;        // syntactic predicate
///   decl : {isTypeName}? ID ID ';' ;           // semantic predicate
///   blk  : '{' {{pushScope}} stat* '}' ;       // always-action
///
///   ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
///   INT  : [0-9]+ ;
///   WS   : [ \t\r\n]+ -> skip ;
///   fragment HEX : [0-9a-fA-F] ;
/// \endcode
///
/// Parser rules start lowercase, lexer rules uppercase. Quoted literals in
/// parser rules implicitly define keyword tokens that win ties against
/// longer-running lexer rules. Semantic predicates and actions are symbolic
/// names bound to callbacks at parse time (see runtime/SemanticEnv.h).
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_GRAMMAR_GRAMMARPARSER_H
#define LLSTAR_GRAMMAR_GRAMMARPARSER_H

#include "grammar/Grammar.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string_view>

namespace llstar {

/// Parses grammar text. Returns null if any error was reported to \p Diags.
///
/// With \p Validate (the default) the grammar is also checked for left
/// recursion and empty rules. \ref AnalyzedGrammar::analyze passes false
/// because it first rewrites immediately left-recursive rules
/// (\ref rewriteLeftRecursion) and validates afterwards.
std::unique_ptr<Grammar> parseGrammarText(std::string_view Text,
                                          DiagnosticEngine &Diags,
                                          bool Validate = true);

} // namespace llstar

#endif // LLSTAR_GRAMMAR_GRAMMARPARSER_H
