#include "grammar/GrammarParser.h"

#include "grammar/GrammarLexer.h"
#include "regex/RegexParser.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cctype>
#include <map>
#include <set>

using namespace llstar;

namespace {

bool isLexerRuleName(const std::string &Name) {
  return !Name.empty() && std::isupper(static_cast<unsigned char>(Name[0]));
}

/// Lexer-rule bodies parse into this intermediate tree so that fragment
/// references can be resolved after the whole file has been read.
struct LexNode {
  using Ptr = std::shared_ptr<LexNode>;
  enum Kind { Leaf, Ref, Concat, Alt, Star, Plus, Opt } K = Leaf;
  regex::RegexNode::Ptr Re; // Leaf
  std::string RefName;      // Ref
  SourceLocation RefLoc;    // Ref
  std::vector<Ptr> Children;

  static Ptr leaf(regex::RegexNode::Ptr Re) {
    auto N = std::make_shared<LexNode>();
    N->K = Leaf;
    N->Re = std::move(Re);
    return N;
  }
  static Ptr ref(std::string Name, SourceLocation Loc) {
    auto N = std::make_shared<LexNode>();
    N->K = Ref;
    N->RefName = std::move(Name);
    N->RefLoc = Loc;
    return N;
  }
  static Ptr nary(Kind K, std::vector<Ptr> Children) {
    auto N = std::make_shared<LexNode>();
    N->K = K;
    N->Children = std::move(Children);
    return N;
  }
};

/// One lexer rule as read from the file.
struct LexRuleDef {
  std::string Name;
  SourceLocation Loc;
  bool IsFragment = false;
  LexNode::Ptr Body;
  LexerAction Action = LexerAction::Emit;
  int32_t Order = 0; // definition order among lexer rules
};

class Parser {
public:
  Parser(std::string_view Text, DiagnosticEngine &Diags) : Diags(Diags) {
    Tokens = lexGrammarText(Text, Diags);
  }

  std::unique_ptr<Grammar> run(bool Validate) {
    G = std::make_unique<Grammar>();
    preRegisterRules();
    parseHeader();
    while (!at(MetaKind::Eof)) {
      if (!parseRuleDef()) {
        // Error recovery: skip to the next ';' and continue.
        while (!at(MetaKind::Eof) && !at(MetaKind::Semi))
          take();
        if (at(MetaKind::Semi))
          take();
      }
    }
    finishLexerRules();
    if (Diags.hasErrors())
      return nullptr;
    if (Validate) {
      G->validate(Diags);
      if (Diags.hasErrors())
        return nullptr;
    }
    return std::move(G);
  }

private:
  //===--------------------------------------------------------------------===//
  // Token helpers
  //===--------------------------------------------------------------------===//

  const MetaToken &cur() const { return Tokens[Pos]; }
  const MetaToken &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(MetaKind Kind) const { return cur().Kind == Kind; }
  bool atIdent(const char *Text) const {
    return at(MetaKind::Ident) && cur().Text == Text;
  }
  MetaToken take() {
    MetaToken T = cur();
    if (Pos + 1 < Tokens.size())
      ++Pos;
    return T;
  }
  bool expect(MetaKind Kind, const char *Context) {
    if (at(Kind))
      return true;
    Diags.error(cur().Loc, std::string("expected ") + metaKindName(Kind) +
                               " " + Context + ", found " +
                               metaKindName(cur().Kind));
    return false;
  }
  MetaToken expectTake(MetaKind Kind, const char *Context) {
    if (!expect(Kind, Context))
      return cur();
    return take();
  }

  //===--------------------------------------------------------------------===//
  // Pre-registration: any Ident immediately followed by ':' defines a rule.
  //===--------------------------------------------------------------------===//

  void preRegisterRules() {
    for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
      if (Tokens[I].Kind != MetaKind::Ident ||
          Tokens[I + 1].Kind != MetaKind::Colon)
        continue;
      const std::string &Name = Tokens[I].Text;
      if (isLexerRuleName(Name))
        continue; // lexer rules live outside the Grammar rule table
      if (G->findRule(Name) >= 0) {
        Diags.error(Tokens[I].Loc, "rule '" + Name + "' redefined");
        continue;
      }
      G->addRule(Name, Tokens[I].Loc);
    }
  }

  //===--------------------------------------------------------------------===//
  // Header: grammar name, options, tokens
  //===--------------------------------------------------------------------===//

  void parseHeader() {
    if (atIdent("grammar")) {
      take();
      if (expect(MetaKind::Ident, "after 'grammar'"))
        G->Name = take().Text;
      expectTake(MetaKind::Semi, "after grammar name");
    } else {
      Diags.error(cur().Loc, "grammar file must start with 'grammar <name>;'");
    }
    while (true) {
      if (atIdent("options") && peek().Kind == MetaKind::Action) {
        take();
        parseOptions(take());
      } else if (atIdent("tokens") && peek().Kind == MetaKind::Action) {
        take();
        parseTokensBlock(take());
      } else {
        break;
      }
    }
  }

  void parseOptions(const MetaToken &Block) {
    // The action token captured "key=value; key=value;" verbatim.
    size_t I = 0;
    const std::string &S = Block.Text;
    auto SkipWs = [&] {
      while (I < S.size() && std::isspace(static_cast<unsigned char>(S[I])))
        ++I;
    };
    while (true) {
      SkipWs();
      if (I >= S.size())
        break;
      size_t KeyStart = I;
      while (I < S.size() && (std::isalnum(static_cast<unsigned char>(S[I])) ||
                              S[I] == '_'))
        ++I;
      std::string Key = S.substr(KeyStart, I - KeyStart);
      SkipWs();
      if (I >= S.size() || S[I] != '=') {
        Diags.error(Block.Loc, "malformed option near '" + Key + "'");
        return;
      }
      ++I;
      SkipWs();
      size_t ValStart = I;
      while (I < S.size() && S[I] != ';')
        ++I;
      std::string Val = S.substr(ValStart, I - ValStart);
      while (!Val.empty() &&
             std::isspace(static_cast<unsigned char>(Val.back())))
        Val.pop_back();
      if (I < S.size())
        ++I; // skip ';'
      applyOption(Block.Loc, Key, Val);
    }
  }

  void applyOption(SourceLocation Loc, const std::string &Key,
                   const std::string &Val) {
    auto AsBool = [&](bool &Out) {
      if (Val == "true")
        Out = true;
      else if (Val == "false")
        Out = false;
      else
        Diags.error(Loc, "option '" + Key + "' expects true/false, got '" +
                             Val + "'");
    };
    auto AsInt = [&](int32_t &Out) {
      size_t Used = 0;
      int Parsed = 0;
      bool Ok = !Val.empty();
      if (Ok) {
        Parsed = std::stoi(Val, &Used);
        Ok = Used == Val.size();
      }
      if (Ok && Parsed > 0)
        Out = Parsed;
      else
        Diags.error(Loc, "option '" + Key + "' expects a positive integer");
    };
    if (Key == "backtrack")
      AsBool(G->Options.Backtrack);
    else if (Key == "memoize")
      AsBool(G->Options.Memoize);
    else if (Key == "m")
      AsInt(G->Options.MaxRecursionDepth);
    else if (Key == "maxDfaStates")
      AsInt(G->Options.MaxDfaStates);
    else
      Diags.warning(Loc, "unknown option '" + Key + "' ignored");
  }

  void parseTokensBlock(const MetaToken &Block) {
    // Names separated by ';' or ','.
    std::string Name;
    auto Flush = [&] {
      if (Name.empty())
        return;
      if (!isLexerRuleName(Name))
        Diags.error(Block.Loc,
                    "token name '" + Name + "' must start uppercase");
      else
        G->vocabulary().getOrDefine(Name);
      Name.clear();
    };
    for (char C : Block.Text) {
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_')
        Name += C;
      else
        Flush();
    }
    Flush();
  }

  //===--------------------------------------------------------------------===//
  // Rules
  //===--------------------------------------------------------------------===//

  bool parseRuleDef() {
    bool Fragment = false;
    if (atIdent("fragment") && peek().Kind == MetaKind::Ident) {
      take();
      Fragment = true;
    }
    if (!expect(MetaKind::Ident, "to start a rule"))
      return false;
    MetaToken NameTok = take();
    if (!expect(MetaKind::Colon, "after rule name"))
      return false;
    take();

    if (isLexerRuleName(NameTok.Text))
      return parseLexerRule(NameTok, Fragment);
    if (Fragment) {
      Diags.error(NameTok.Loc, "'fragment' applies only to lexer rules");
      return false;
    }
    return parseParserRule(NameTok);
  }

  bool parseParserRule(const MetaToken &NameTok) {
    int32_t Index = G->findRule(NameTok.Text);
    assert(Index >= 0 && "rule was pre-registered");
    CurrentRuleName = NameTok.Text;
    std::vector<Alternative> Alts;
    if (!parseAltList(Alts, /*InBlock=*/false))
      return false;
    if (!expect(MetaKind::Semi, "to end the rule"))
      return false;
    take();
    G->rule(Index).Alts = std::move(Alts);
    return true;
  }

  /// Parses alternatives up to ';' (top level) or ')' (block).
  bool parseAltList(std::vector<Alternative> &Alts, bool InBlock) {
    while (true) {
      Alternative A;
      A.Loc = cur().Loc;
      if (!parseAltElements(A))
        return false;
      Alts.push_back(std::move(A));
      if (at(MetaKind::Pipe)) {
        take();
        continue;
      }
      break;
    }
    (void)InBlock;
    return true;
  }

  bool parseAltElements(Alternative &A) {
    while (true) {
      switch (cur().Kind) {
      case MetaKind::Semi:
      case MetaKind::RParen:
      case MetaKind::Pipe:
      case MetaKind::Eof:
        return true;
      default:
        break;
      }
      Element E;
      if (!parseElement(E))
        return false;
      A.Elements.push_back(std::move(E));
    }
  }

  bool parseElement(Element &Out) {
    SourceLocation Loc = cur().Loc;
    switch (cur().Kind) {
    case MetaKind::Action: {
      MetaToken T = take();
      if (at(MetaKind::Question)) {
        take();
        if (T.DoubleBrace) {
          Diags.error(Loc, "'{{...}}' cannot be a predicate");
          return false;
        }
        Out = Element::semPred(T.Text, Loc);
        return true;
      }
      Out = Element::action(T.Text, T.DoubleBrace, Loc);
      return true;
    }
    case MetaKind::Ident: {
      MetaToken T = take();
      if (T.Text == "EOF") {
        Out = Element::tokenRef(TokenEof, Loc);
      } else if (isLexerRuleName(T.Text)) {
        Out = Element::tokenRef(G->vocabulary().getOrDefine(T.Text), Loc);
      } else {
        int32_t Index = G->findRule(T.Text);
        if (Index < 0) {
          Diags.error(Loc, "reference to undefined rule '" + T.Text + "'");
          return false;
        }
        Out = Element::ruleRef(Index, Loc);
      }
      return applyPostfix(Out, Loc);
    }
    case MetaKind::StrLit: {
      MetaToken T = take();
      Out = Element::tokenRef(G->defineLiteral(T.Text, T.Loc), Loc);
      return applyPostfix(Out, Loc);
    }
    case MetaKind::LParen: {
      take();
      std::vector<Alternative> Alts;
      if (!parseAltList(Alts, /*InBlock=*/true))
        return false;
      if (!expect(MetaKind::RParen, "to close the subrule"))
        return false;
      take();
      if (at(MetaKind::DArrow)) {
        take();
        // Syntactic predicate: hoist the fragment into a hidden rule.
        std::string FragName = "__synpred" + std::to_string(++SynPredCount) +
                               "_" + CurrentRuleName;
        int32_t FragIndex = G->addRule(FragName, Loc);
        G->rule(FragIndex).Alts = std::move(Alts);
        G->rule(FragIndex).IsSynPredFragment = true;
        Out = Element::synPred(FragIndex, Loc);
        return true;
      }
      BlockRepeat Repeat = takeRepeatSuffix();
      Out = Element::block(std::move(Alts), Repeat, Loc);
      return true;
    }
    case MetaKind::Dot:
      take();
      Out = Element::wildcard(Loc);
      return applyPostfix(Out, Loc);
    case MetaKind::Tilde: {
      take();
      IntervalSet Set;
      if (!parseTokenSetOperand(Set))
        return false;
      Out = Element::tokenSet(std::move(Set), /*Negated=*/true, Loc);
      return applyPostfix(Out, Loc);
    }
    default:
      Diags.error(Loc, std::string("unexpected ") + metaKindName(cur().Kind) +
                           " in rule body");
      return false;
    }
  }

  /// Parses the operand of a parser-rule '~': one token reference or a
  /// parenthesized alternation of token references. Fills \p Set with the
  /// referenced token types.
  bool parseTokenSetOperand(IntervalSet &Set) {
    auto TakeOne = [&]() -> bool {
      SourceLocation Loc = cur().Loc;
      if (at(MetaKind::Ident)) {
        MetaToken T = take();
        if (!isLexerRuleName(T.Text)) {
          Diags.error(Loc, "'~' requires token references, not rule '" +
                               T.Text + "'");
          return false;
        }
        Set.add(G->vocabulary().getOrDefine(T.Text));
        return true;
      }
      if (at(MetaKind::StrLit)) {
        {
        MetaToken LitTok = take();
        Set.add(G->defineLiteral(LitTok.Text, LitTok.Loc));
      }
        return true;
      }
      Diags.error(Loc, "expected a token reference after '~'");
      return false;
    };

    if (at(MetaKind::LParen)) {
      take();
      while (true) {
        if (!TakeOne())
          return false;
        if (at(MetaKind::Pipe)) {
          take();
          continue;
        }
        break;
      }
      if (!expect(MetaKind::RParen, "to close the token set"))
        return false;
      take();
      return true;
    }
    return TakeOne();
  }

  /// Wraps a plain atom in a block if followed by ?, *, or +.
  bool applyPostfix(Element &E, SourceLocation Loc) {
    BlockRepeat Repeat = takeRepeatSuffix();
    if (Repeat == BlockRepeat::None)
      return true;
    Alternative A;
    A.Loc = Loc;
    A.Elements.push_back(std::move(E));
    E = Element::block({std::move(A)}, Repeat, Loc);
    return true;
  }

  BlockRepeat takeRepeatSuffix() {
    if (at(MetaKind::Question)) {
      take();
      return BlockRepeat::Optional;
    }
    if (at(MetaKind::Star)) {
      take();
      return BlockRepeat::Star;
    }
    if (at(MetaKind::Plus)) {
      take();
      return BlockRepeat::Plus;
    }
    return BlockRepeat::None;
  }

  //===--------------------------------------------------------------------===//
  // Lexer rules
  //===--------------------------------------------------------------------===//

  bool parseLexerRule(const MetaToken &NameTok, bool Fragment) {
    LexRuleDef Def;
    Def.Name = NameTok.Text;
    Def.Loc = NameTok.Loc;
    Def.IsFragment = Fragment;
    Def.Order = int32_t(LexRules.size());
    if (!parseLexAlt(Def.Body))
      return false;
    if (at(MetaKind::Arrow)) {
      take();
      if (!expect(MetaKind::Ident, "after '->'"))
        return false;
      MetaToken Cmd = take();
      if (Cmd.Text == "skip")
        Def.Action = LexerAction::Skip;
      else if (Cmd.Text == "hidden")
        Def.Action = LexerAction::Hidden;
      else
        Diags.error(Cmd.Loc, "unknown lexer command '" + Cmd.Text +
                                 "' (expected skip or hidden)");
    }
    if (!expect(MetaKind::Semi, "to end the lexer rule"))
      return false;
    take();
    if (LexRuleByName.count(Def.Name)) {
      Diags.error(NameTok.Loc, "lexer rule '" + Def.Name + "' redefined");
      return false;
    }
    LexRuleByName[Def.Name] = LexRules.size();
    LexRules.push_back(std::move(Def));
    return true;
  }

  bool parseLexAlt(LexNode::Ptr &Out) {
    std::vector<LexNode::Ptr> Alts;
    while (true) {
      LexNode::Ptr Seq;
      if (!parseLexSeq(Seq))
        return false;
      Alts.push_back(std::move(Seq));
      if (at(MetaKind::Pipe)) {
        take();
        continue;
      }
      break;
    }
    Out = Alts.size() == 1 ? Alts[0] : LexNode::nary(LexNode::Alt, Alts);
    return true;
  }

  bool parseLexSeq(LexNode::Ptr &Out) {
    std::vector<LexNode::Ptr> Parts;
    while (true) {
      switch (cur().Kind) {
      case MetaKind::Semi:
      case MetaKind::RParen:
      case MetaKind::Pipe:
      case MetaKind::Arrow:
      case MetaKind::Eof:
        goto done;
      default:
        break;
      }
      {
        LexNode::Ptr Part;
        if (!parseLexPostfix(Part))
          return false;
        Parts.push_back(std::move(Part));
      }
    }
  done:
    if (Parts.empty()) {
      Diags.error(cur().Loc, "empty alternative in lexer rule");
      return false;
    }
    Out = Parts.size() == 1 ? Parts[0] : LexNode::nary(LexNode::Concat, Parts);
    return true;
  }

  bool parseLexPostfix(LexNode::Ptr &Out) {
    if (!parseLexAtom(Out))
      return false;
    while (true) {
      if (at(MetaKind::Star))
        Out = LexNode::nary(LexNode::Star, {Out});
      else if (at(MetaKind::Plus))
        Out = LexNode::nary(LexNode::Plus, {Out});
      else if (at(MetaKind::Question))
        Out = LexNode::nary(LexNode::Opt, {Out});
      else
        break;
      take();
    }
    return true;
  }

  bool parseLexAtom(LexNode::Ptr &Out) {
    SourceLocation Loc = cur().Loc;
    switch (cur().Kind) {
    case MetaKind::StrLit: {
      MetaToken T = take();
      // 'a'..'z' range?
      if (at(MetaKind::Range)) {
        take();
        if (!expect(MetaKind::StrLit, "after '..'"))
          return false;
        MetaToken Hi = take();
        if (T.Text.size() != 1 || Hi.Text.size() != 1) {
          Diags.error(Loc, "range endpoints must be single characters");
          return false;
        }
        Out = LexNode::leaf(regex::RegexNode::charSet(IntervalSet::range(
            static_cast<unsigned char>(T.Text[0]),
            static_cast<unsigned char>(Hi.Text[0]))));
        return true;
      }
      Out = LexNode::leaf(regex::RegexNode::string(T.Text));
      return true;
    }
    case MetaKind::CharSet: {
      MetaToken T = take();
      DiagnosticEngine SetDiags;
      regex::RegexNode::Ptr Re =
          regex::parseRegex("[" + T.Text + "]", SetDiags);
      if (!Re) {
        Diags.error(Loc, "malformed character set [" + T.Text + "]");
        return false;
      }
      Out = LexNode::leaf(std::move(Re));
      return true;
    }
    case MetaKind::Dot:
      take();
      Out = LexNode::leaf(regex::RegexNode::charSet(IntervalSet::range(0, 255)));
      return true;
    case MetaKind::Tilde: {
      take();
      LexNode::Ptr Inner;
      if (!parseLexAtom(Inner))
        return false;
      if (Inner->K != LexNode::Leaf ||
          Inner->Re->kind() != regex::RegexKind::CharSet) {
        // A single-char string literal lowers to a CharSet already via
        // RegexNode::string -> literal; longer strings cannot be negated.
        Diags.error(Loc, "'~' requires a single character or character set");
        return false;
      }
      Out = LexNode::leaf(
          regex::RegexNode::charSet(Inner->Re->set().complement(0, 255)));
      return true;
    }
    case MetaKind::Ident: {
      MetaToken T = take();
      if (!isLexerRuleName(T.Text)) {
        Diags.error(Loc, "lexer rules cannot reference parser rule '" +
                             T.Text + "'");
        return false;
      }
      Out = LexNode::ref(T.Text, Loc);
      return true;
    }
    case MetaKind::LParen: {
      take();
      if (!parseLexAlt(Out))
        return false;
      if (!expect(MetaKind::RParen, "to close the group"))
        return false;
      take();
      return true;
    }
    default:
      Diags.error(Loc, std::string("unexpected ") + metaKindName(cur().Kind) +
                           " in lexer rule");
      return false;
    }
  }

  //===--------------------------------------------------------------------===//
  // Lexer rule resolution (fragment inlining)
  //===--------------------------------------------------------------------===//

  regex::RegexNode::Ptr lowerLexNode(const LexNode &N,
                                     std::set<std::string> &InProgress) {
    switch (N.K) {
    case LexNode::Leaf:
      return N.Re;
    case LexNode::Ref: {
      auto It = LexRuleByName.find(N.RefName);
      if (It == LexRuleByName.end()) {
        Diags.error(N.RefLoc,
                    "reference to undefined lexer rule '" + N.RefName + "'");
        return nullptr;
      }
      if (InProgress.count(N.RefName)) {
        Diags.error(N.RefLoc, "lexer rule '" + N.RefName +
                                  "' is recursive; lexer rules must describe "
                                  "regular languages");
        return nullptr;
      }
      InProgress.insert(N.RefName);
      regex::RegexNode::Ptr Result =
          lowerLexNode(*LexRules[It->second].Body, InProgress);
      InProgress.erase(N.RefName);
      return Result;
    }
    case LexNode::Concat:
    case LexNode::Alt: {
      std::vector<regex::RegexNode::Ptr> Children;
      for (const LexNode::Ptr &C : N.Children) {
        regex::RegexNode::Ptr L = lowerLexNode(*C, InProgress);
        if (!L)
          return nullptr;
        Children.push_back(std::move(L));
      }
      return N.K == LexNode::Concat
                 ? regex::RegexNode::concat(std::move(Children))
                 : regex::RegexNode::alt(std::move(Children));
    }
    case LexNode::Star:
    case LexNode::Plus:
    case LexNode::Opt: {
      regex::RegexNode::Ptr C = lowerLexNode(*N.Children[0], InProgress);
      if (!C)
        return nullptr;
      if (N.K == LexNode::Star)
        return regex::RegexNode::star(std::move(C));
      if (N.K == LexNode::Plus)
        return regex::RegexNode::plus(std::move(C));
      return regex::RegexNode::optional(std::move(C));
    }
    }
    return nullptr;
  }

  void finishLexerRules() {
    for (const LexRuleDef &Def : LexRules) {
      if (Def.IsFragment)
        continue;
      std::set<std::string> InProgress{Def.Name};
      regex::RegexNode::Ptr Re = lowerLexNode(*Def.Body, InProgress);
      if (!Re)
        continue;
      TokenType Type = G->vocabulary().getOrDefine(Def.Name);
      // Named rules rank after literals (priority 0) so keywords win ties.
      G->lexerSpec().addRule(Type, std::move(Re), Def.Action,
                             /*Priority=*/100 + Def.Order, Def.Loc);
    }
  }

  DiagnosticEngine &Diags;
  std::vector<MetaToken> Tokens;
  size_t Pos = 0;
  std::unique_ptr<Grammar> G;
  std::string CurrentRuleName;
  int SynPredCount = 0;
  std::vector<LexRuleDef> LexRules;
  std::map<std::string, size_t> LexRuleByName;
};

} // namespace

std::unique_ptr<Grammar> llstar::parseGrammarText(std::string_view Text,
                                                  DiagnosticEngine &Diags,
                                                  bool Validate) {
  return Parser(Text, Diags).run(Validate);
}
