//===- grammar/Grammar.h - Predicated grammar object model ------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicated-grammar object model of the paper's Section 3: rules with
/// ordered alternatives built from token references, rule references, EBNF
/// blocks (`(...)`, `?`, `*`, `+`), semantic predicates `{p}?`, syntactic
/// predicates `(alpha)=>`, and actions `{a}` / always-actions `{{a}}`.
///
/// Grammars are usually produced by \ref GrammarParser from ANTLR-like text
/// but can also be built programmatically.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_GRAMMAR_GRAMMAR_H
#define LLSTAR_GRAMMAR_GRAMMAR_H

#include "lexer/LexerSpec.h"
#include "lexer/Token.h"
#include "lexer/Vocabulary.h"
#include "support/Diagnostics.h"
#include "support/IntervalSet.h"
#include "support/SourceLocation.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace llstar {

struct Alternative;

/// Discriminator for \ref Element.
enum class ElementKind : uint8_t {
  TokenRef, ///< Matches one token of type TokType (possibly TokenEof).
  TokenSet, ///< Matches one token from a set: `~X`, `~(A|B)`, or `.`.
  RuleRef,  ///< Invokes rule RuleIndex.
  Block,    ///< A subrule: alternatives, with an optional EBNF repeat.
  SemPred,  ///< `{Name}?` — gate on a registered boolean predicate.
  SynPred,  ///< `(alpha)=>` — gate on a speculative parse of a fragment rule.
  Action,   ///< `{Name}` / `{{Name}}` — run a registered mutator.
};

/// EBNF suffix applied to a Block element.
enum class BlockRepeat : uint8_t {
  None,     ///< `( ... )`
  Optional, ///< `( ... )?`
  Star,     ///< `( ... )*`
  Plus,     ///< `( ... )+`
};

/// One grammar symbol occurrence on a production right-hand side.
struct Element {
  ElementKind Kind = ElementKind::TokenRef;
  SourceLocation Loc;

  /// TokenRef: the token type.
  TokenType TokType = TokenInvalid;

  /// TokenSet: listed token types; with Negated, the element matches any
  /// token *not* in the set (never EOF). The wildcard `.` is the negated
  /// empty set. Complements resolve against the final vocabulary at ATN
  /// construction time.
  IntervalSet TokSet;
  bool Negated = false;

  /// RuleRef: index of the referenced rule within the grammar.
  int32_t RuleIndex = -1;
  /// RuleRef: precedence argument for left-recursion-rewritten rules
  /// (0 = unconstrained).
  int32_t Precedence = 0;

  /// Block: the nested alternatives and repeat suffix.
  std::vector<Alternative> Alts;
  BlockRepeat Repeat = BlockRepeat::None;

  /// SemPred/Action: name bound against the runtime's semantic environment.
  /// SemPred with MinPrecedence >= 0 is a precedence predicate `{P <= p}?`
  /// synthesized by the left-recursion rewrite (Name is then empty).
  std::string Name;
  /// Action: `{{...}}` actions also run while speculating (Section 4.3).
  bool AlwaysAction = false;
  /// SemPred: precedence bound, or -1 for ordinary predicates.
  int32_t MinPrecedence = -1;

  /// SynPred: index of the hidden fragment rule to speculate on.
  int32_t SynPredRule = -1;

  static Element tokenRef(TokenType Type, SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::TokenRef;
    E.TokType = Type;
    E.Loc = Loc;
    return E;
  }
  static Element ruleRef(int32_t RuleIndex, SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::RuleRef;
    E.RuleIndex = RuleIndex;
    E.Loc = Loc;
    return E;
  }
  static Element tokenSet(IntervalSet Set, bool Negated,
                          SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::TokenSet;
    E.TokSet = std::move(Set);
    E.Negated = Negated;
    E.Loc = Loc;
    return E;
  }
  /// The wildcard `.`: any single token except EOF.
  static Element wildcard(SourceLocation Loc = {}) {
    return tokenSet(IntervalSet(), /*Negated=*/true, Loc);
  }
  static Element block(std::vector<Alternative> Alts,
                       BlockRepeat Repeat = BlockRepeat::None,
                       SourceLocation Loc = {});
  static Element semPred(std::string Name, SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::SemPred;
    E.Name = std::move(Name);
    E.Loc = Loc;
    return E;
  }
  static Element precPred(int32_t MinPrecedence, SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::SemPred;
    E.MinPrecedence = MinPrecedence;
    E.Loc = Loc;
    return E;
  }
  static Element action(std::string Name, bool Always = false,
                        SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::Action;
    E.Name = std::move(Name);
    E.AlwaysAction = Always;
    E.Loc = Loc;
    return E;
  }
  static Element synPred(int32_t FragmentRule, SourceLocation Loc = {}) {
    Element E;
    E.Kind = ElementKind::SynPred;
    E.SynPredRule = FragmentRule;
    E.Loc = Loc;
    return E;
  }
};

/// One production alternative: a sequence of elements.
struct Alternative {
  std::vector<Element> Elements;
  SourceLocation Loc;

  Alternative() = default;
  explicit Alternative(std::vector<Element> Elements, SourceLocation Loc = {})
      : Elements(std::move(Elements)), Loc(Loc) {}
};

/// One grammar rule (nonterminal) with its ordered alternatives.
struct Rule {
  std::string Name;
  int32_t Index = -1;
  std::vector<Alternative> Alts;
  SourceLocation Loc;
  /// Hidden fragment created for a `(alpha)=>` syntactic predicate.
  bool IsSynPredFragment = false;
  /// Rewritten by the left-recursion eliminator; rule takes a precedence
  /// argument at runtime.
  bool IsPrecedenceRule = false;
};

/// Grammar-level options (the `options { ... }` block).
struct GrammarOptions {
  /// PEG mode: auto-insert syntactic predicates into every decision that
  /// analysis cannot make deterministic (paper Section 2).
  bool Backtrack = false;
  /// Memoize speculative sub-parses (packrat memoization, Section 6.2).
  bool Memoize = true;
  /// The internal recursion-depth constant m (Sections 2, 5.3).
  int32_t MaxRecursionDepth = 1;
  /// Land-mine guard: abort DFA construction past this many states (§6.1).
  int32_t MaxDfaStates = 2000;
};

/// A whole predicated grammar: rules + token vocabulary + lexer definition.
class Grammar {
public:
  std::string Name;
  GrammarOptions Options;

  /// Adds an empty rule; returns its index.
  int32_t addRule(const std::string &RuleName, SourceLocation Loc = {});

  /// Returns the rule index for \p RuleName or -1.
  int32_t findRule(const std::string &RuleName) const;

  Rule &rule(int32_t Index) { return Rules[size_t(Index)]; }
  const Rule &rule(int32_t Index) const { return Rules[size_t(Index)]; }
  size_t numRules() const { return Rules.size(); }
  const std::vector<Rule> &rules() const { return Rules; }

  Vocabulary &vocabulary() { return Vocab; }
  const Vocabulary &vocabulary() const { return Vocab; }

  LexerSpec &lexerSpec() { return Lexer; }
  const LexerSpec &lexerSpec() const { return Lexer; }

  /// Index of the start rule (the first parser rule by default).
  int32_t startRule() const { return StartRule; }
  void setStartRule(int32_t Index) { StartRule = Index; }

  /// Convenience: defines (or finds) the token type for quoted literal
  /// \p Text and ensures a keyword lexer rule exists for it.
  TokenType defineLiteral(const std::string &Text,
                          SourceLocation Loc = SourceLocation());

  /// Post-parse validation: undefined rules were already rejected by the
  /// parser; this checks for direct/indirect left recursion (illegal for
  /// LL(*), Section 1.1) and for unreachable synpred fragments misuse.
  /// Reports problems to \p Diags.
  void validate(DiagnosticEngine &Diags) const;

  /// True if \p A can derive the empty string (predicates/actions are
  /// invisible; blocks with `?`/`*` are nullable).
  bool alternativeIsNullable(const Alternative &A) const;
  bool ruleIsNullable(int32_t RuleIndex) const;

  /// Forces the lazily computed nullability cache so later const queries
  /// never write. AnalyzedGrammar calls this once analysis finishes; after
  /// that, concurrent const use of the grammar from many threads (the parse
  /// service's shared bundles) is data-race-free. Mutating the grammar
  /// after freezing un-freezes it.
  void freeze() const {
    if (!NullableValid)
      computeNullable();
  }

  /// Human-readable dump of all rules, for tests and debugging.
  std::string str() const;

private:
  void computeNullable() const;

  std::vector<Rule> Rules;
  std::unordered_map<std::string, int32_t> RuleByName;
  Vocabulary Vocab;
  LexerSpec Lexer;
  int32_t StartRule = 0;

  // Lazy nullability cache (computed on first query or by freeze(),
  // invalidated by addRule). The mutation makes unsynchronized concurrent
  // const queries racy, which is why AnalyzedGrammar freezes the cache
  // before the grammar is ever shared across parse-service workers.
  mutable std::vector<char> NullableCache;
  mutable bool NullableValid = false;
};

} // namespace llstar

#endif // LLSTAR_GRAMMAR_GRAMMAR_H
