#include "grammar/Grammar.h"

#include "regex/RegexAST.h"

#include <cassert>
#include <functional>

using namespace llstar;

Element Element::block(std::vector<Alternative> Alts, BlockRepeat Repeat,
                       SourceLocation Loc) {
  Element E;
  E.Kind = ElementKind::Block;
  E.Alts = std::move(Alts);
  E.Repeat = Repeat;
  E.Loc = Loc;
  return E;
}

int32_t Grammar::addRule(const std::string &RuleName, SourceLocation Loc) {
  assert(RuleByName.find(RuleName) == RuleByName.end() &&
         "rule already defined");
  Rule R;
  R.Name = RuleName;
  R.Index = int32_t(Rules.size());
  R.Loc = Loc;
  Rules.push_back(std::move(R));
  RuleByName.emplace(RuleName, int32_t(Rules.size()) - 1);
  NullableValid = false;
  return int32_t(Rules.size()) - 1;
}

int32_t Grammar::findRule(const std::string &RuleName) const {
  auto It = RuleByName.find(RuleName);
  return It == RuleByName.end() ? -1 : It->second;
}

TokenType Grammar::defineLiteral(const std::string &Text, SourceLocation Loc) {
  std::string Quoted = "'" + Text + "'";
  TokenType Existing = Vocab.lookup(Quoted);
  if (Existing != TokenInvalid)
    return Existing;
  TokenType Type = Vocab.getOrDefine(Quoted, /*Literal=*/true);
  // Literals get priority 0 so keywords beat identifier rules on ties.
  Lexer.addRule(Type, regex::RegexNode::string(Text), LexerAction::Emit,
                /*Priority=*/0, Loc);
  return Type;
}

//===----------------------------------------------------------------------===//
// Nullability
//===----------------------------------------------------------------------===//

namespace {

/// Is \p E nullable given per-rule nullability \p RuleNullable?
bool elementNullable(const Element &E, const std::vector<char> &RuleNullable);

bool altNullable(const Alternative &A, const std::vector<char> &RuleNullable) {
  for (const Element &E : A.Elements)
    if (!elementNullable(E, RuleNullable))
      return false;
  return true;
}

bool elementNullable(const Element &E, const std::vector<char> &RuleNullable) {
  switch (E.Kind) {
  case ElementKind::TokenRef:
  case ElementKind::TokenSet:
    return false;
  case ElementKind::SemPred:
  case ElementKind::SynPred:
  case ElementKind::Action:
    return true;
  case ElementKind::RuleRef:
    return RuleNullable[size_t(E.RuleIndex)];
  case ElementKind::Block:
    if (E.Repeat == BlockRepeat::Optional || E.Repeat == BlockRepeat::Star)
      return true;
    for (const Alternative &A : E.Alts)
      if (altNullable(A, RuleNullable))
        return true;
    return false;
  }
  return false;
}

} // namespace

void Grammar::computeNullable() const {
  NullableCache.assign(Rules.size(), 0);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Rule &R : Rules) {
      if (NullableCache[size_t(R.Index)])
        continue;
      for (const Alternative &A : R.Alts) {
        if (altNullable(A, NullableCache)) {
          NullableCache[size_t(R.Index)] = 1;
          Changed = true;
          break;
        }
      }
    }
  }
  NullableValid = true;
}

bool Grammar::ruleIsNullable(int32_t RuleIndex) const {
  if (!NullableValid)
    computeNullable();
  return NullableCache[size_t(RuleIndex)] != 0;
}

bool Grammar::alternativeIsNullable(const Alternative &A) const {
  if (!NullableValid)
    computeNullable();
  return altNullable(A, NullableCache);
}

//===----------------------------------------------------------------------===//
// Validation: left-recursion detection
//===----------------------------------------------------------------------===//

namespace {

/// Collects the rules that can appear as the left corner of \p A: the rules
/// reachable at the start of the alternative before any token must match.
void leftCorners(const Grammar &G, const Alternative &A,
                 std::vector<int32_t> &Out) {
  for (const Element &E : A.Elements) {
    switch (E.Kind) {
    case ElementKind::TokenRef:
    case ElementKind::TokenSet:
      return; // a token blocks further left corners
    case ElementKind::SemPred:
    case ElementKind::SynPred:
    case ElementKind::Action:
      continue; // invisible
    case ElementKind::RuleRef:
      Out.push_back(E.RuleIndex);
      if (!G.ruleIsNullable(E.RuleIndex))
        return;
      continue;
    case ElementKind::Block: {
      for (const Alternative &Sub : E.Alts)
        leftCorners(G, Sub, Out);
      bool Nullable = E.Repeat == BlockRepeat::Optional ||
                      E.Repeat == BlockRepeat::Star;
      if (!Nullable) {
        for (const Alternative &Sub : E.Alts)
          if (G.alternativeIsNullable(Sub))
            Nullable = true;
      }
      if (!Nullable)
        return;
      continue;
    }
    }
  }
}

} // namespace

void Grammar::validate(DiagnosticEngine &Diags) const {
  // Build the left-corner graph and look for cycles (left recursion).
  std::vector<std::vector<int32_t>> Graph(Rules.size());
  for (const Rule &R : Rules) {
    std::vector<int32_t> Corners;
    for (const Alternative &A : R.Alts)
      leftCorners(*this, A, Corners);
    Graph[size_t(R.Index)] = std::move(Corners);
  }

  // DFS cycle detection with an explicit color array.
  enum Color : char { White, Gray, Black };
  std::vector<char> Colors(Rules.size(), White);
  std::function<bool(int32_t)> Visit = [&](int32_t R) -> bool {
    Colors[size_t(R)] = Gray;
    for (int32_t Next : Graph[size_t(R)]) {
      if (Colors[size_t(Next)] == Gray) {
        Diags.error(Rules[size_t(Next)].Loc,
                    "rule '" + Rules[size_t(Next)].Name +
                        "' is left-recursive; LL(*) requires non-left-"
                        "recursive grammars (rewrite with "
                        "llstar::rewriteLeftRecursion or manually)");
        return true;
      }
      if (Colors[size_t(Next)] == White && Visit(Next))
        return true;
    }
    Colors[size_t(R)] = Black;
    return false;
  };
  for (const Rule &R : Rules)
    if (Colors[size_t(R.Index)] == White && Visit(R.Index))
      return; // one error is enough; avoid cascades

  for (const Rule &R : Rules)
    if (R.Alts.empty() && !R.IsSynPredFragment)
      Diags.error(R.Loc, "rule '" + R.Name + "' has no alternatives");
}

//===----------------------------------------------------------------------===//
// Printing
//===----------------------------------------------------------------------===//

namespace {

void printAlt(const Grammar &G, const Alternative &A, std::string &Out);

void printElement(const Grammar &G, const Element &E, std::string &Out) {
  switch (E.Kind) {
  case ElementKind::TokenRef:
    Out += G.vocabulary().name(E.TokType);
    break;
  case ElementKind::TokenSet: {
    if (E.Negated && E.TokSet.empty()) {
      Out += ".";
      break;
    }
    if (E.Negated)
      Out += "~";
    Out += "(";
    bool First = true;
    E.TokSet.forEach([&](int32_t T) {
      if (!First)
        Out += "|";
      First = false;
      Out += G.vocabulary().name(TokenType(T));
    });
    Out += ")";
    break;
  }
  case ElementKind::RuleRef:
    Out += G.rule(E.RuleIndex).Name;
    if (E.Precedence > 0)
      Out += "[" + std::to_string(E.Precedence) + "]";
    break;
  case ElementKind::SemPred:
    if (E.MinPrecedence >= 0)
      Out += "{prec<=" + std::to_string(E.MinPrecedence) + "}?";
    else
      Out += "{" + E.Name + "}?";
    break;
  case ElementKind::SynPred:
    Out += "(" + G.rule(E.SynPredRule).Name + ")=>";
    break;
  case ElementKind::Action:
    Out += E.AlwaysAction ? "{{" + E.Name + "}}" : "{" + E.Name + "}";
    break;
  case ElementKind::Block: {
    Out += "(";
    for (size_t I = 0; I < E.Alts.size(); ++I) {
      if (I)
        Out += " | ";
      printAlt(G, E.Alts[I], Out);
    }
    Out += ")";
    switch (E.Repeat) {
    case BlockRepeat::None:
      break;
    case BlockRepeat::Optional:
      Out += "?";
      break;
    case BlockRepeat::Star:
      Out += "*";
      break;
    case BlockRepeat::Plus:
      Out += "+";
      break;
    }
    break;
  }
  }
}

void printAlt(const Grammar &G, const Alternative &A, std::string &Out) {
  if (A.Elements.empty()) {
    Out += "/*empty*/";
    return;
  }
  for (size_t I = 0; I < A.Elements.size(); ++I) {
    if (I)
      Out += " ";
    printElement(G, A.Elements[I], Out);
  }
}

} // namespace

std::string Grammar::str() const {
  std::string Out;
  for (const Rule &R : Rules) {
    Out += R.Name;
    Out += " : ";
    for (size_t I = 0; I < R.Alts.size(); ++I) {
      if (I)
        Out += " | ";
      printAlt(*this, R.Alts[I], Out);
    }
    Out += " ;\n";
  }
  return Out;
}
