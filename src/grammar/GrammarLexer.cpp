#include "grammar/GrammarLexer.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace llstar;

namespace {

class MetaLexer {
public:
  MetaLexer(std::string_view Text, DiagnosticEngine &Diags)
      : Text(Text), Diags(Diags) {}

  std::vector<MetaToken> run() {
    std::vector<MetaToken> Result;
    while (true) {
      skipTrivia();
      MetaToken T = next();
      bool IsEof = T.Kind == MetaKind::Eof;
      Result.push_back(std::move(T));
      if (IsEof)
        break;
    }
    return Result;
  }

private:
  bool atEnd() const { return Pos >= Text.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
  }
  char take() {
    char C = Text[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 0;
    } else {
      ++Column;
    }
    return C;
  }

  SourceLocation loc() const { return SourceLocation(Line, Column); }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        take();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          take();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLocation Start = loc();
        take();
        take();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          take();
        if (atEnd()) {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        take();
        take();
        continue;
      }
      return;
    }
  }

  MetaToken make(MetaKind Kind, SourceLocation Loc, std::string TokText = "") {
    MetaToken T;
    T.Kind = Kind;
    T.Loc = Loc;
    T.Text = std::move(TokText);
    T.Offset = TokStart;
    T.EndOffset = Pos;
    return T;
  }

  MetaToken next() {
    SourceLocation Loc = loc();
    TokStart = Pos;
    if (atEnd())
      return make(MetaKind::Eof, Loc);

    char C = take();
    switch (C) {
    case ':':
      return make(MetaKind::Colon, Loc);
    case ';':
      return make(MetaKind::Semi, Loc);
    case '|':
      return make(MetaKind::Pipe, Loc);
    case '(':
      return make(MetaKind::LParen, Loc);
    case ')':
      return make(MetaKind::RParen, Loc);
    case '?':
      return make(MetaKind::Question, Loc);
    case '*':
      return make(MetaKind::Star, Loc);
    case '+':
      return make(MetaKind::Plus, Loc);
    case '~':
      return make(MetaKind::Tilde, Loc);
    case '.':
      if (peek() == '.') {
        take();
        return make(MetaKind::Range, Loc);
      }
      return make(MetaKind::Dot, Loc);
    case '-':
      if (peek() == '>') {
        take();
        return make(MetaKind::Arrow, Loc);
      }
      Diags.error(Loc, "stray '-' (did you mean '->'?)");
      return next();
    case '=':
      if (peek() == '>') {
        take();
        return make(MetaKind::DArrow, Loc);
      }
      Diags.error(Loc, "stray '=' (did you mean '=>'?)");
      return next();
    case '\'':
      return lexString(Loc);
    case '[':
      return lexCharSet(Loc);
    case '{':
      return lexAction(Loc);
    default:
      break;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Name(1, C);
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        Name += take();
      return make(MetaKind::Ident, Loc, std::move(Name));
    }

    Diags.error(Loc, "unexpected character '" + escapeChar(C) + "'");
    return next();
  }

  MetaToken lexString(SourceLocation Loc) {
    std::string Value;
    while (true) {
      if (atEnd() || peek() == '\n') {
        Diags.error(Loc, "unterminated string literal");
        break;
      }
      char C = take();
      if (C == '\'')
        break;
      if (C == '\\') {
        if (atEnd()) {
          Diags.error(Loc, "unterminated string literal");
          break;
        }
        char E = take();
        switch (E) {
        case 'n':
          Value += '\n';
          break;
        case 't':
          Value += '\t';
          break;
        case 'r':
          Value += '\r';
          break;
        default:
          Value += E; // \\, \', \" and friends stand for themselves
          break;
        }
        continue;
      }
      Value += C;
    }
    if (Value.empty())
      Diags.error(Loc, "empty string literal");
    return make(MetaKind::StrLit, Loc, std::move(Value));
  }

  MetaToken lexCharSet(SourceLocation Loc) {
    // Capture the raw inner text; escapes stay intact so the regex substrate
    // can interpret them uniformly.
    std::string Raw;
    while (true) {
      if (atEnd() || peek() == '\n') {
        Diags.error(Loc, "unterminated character set");
        break;
      }
      char C = take();
      if (C == ']')
        break;
      Raw += C;
      if (C == '\\' && !atEnd())
        Raw += take();
    }
    return make(MetaKind::CharSet, Loc, std::move(Raw));
  }

  MetaToken lexAction(SourceLocation Loc) {
    bool Double = false;
    if (peek() == '{') {
      take();
      Double = true;
    }
    std::string Body;
    int Depth = 1;
    while (true) {
      if (atEnd()) {
        Diags.error(Loc, "unterminated action");
        break;
      }
      char C = take();
      if (C == '{') {
        ++Depth;
      } else if (C == '}') {
        --Depth;
        if (Depth == 0) {
          if (Double) {
            if (peek() == '}')
              take();
            else
              Diags.error(Loc, "'{{' action not closed by '}}'");
          }
          break;
        }
      }
      Body += C;
    }
    // Trim surrounding whitespace; action text is a symbolic name bound at
    // runtime, so layout is irrelevant.
    size_t B = Body.find_first_not_of(" \t\r\n");
    size_t E = Body.find_last_not_of(" \t\r\n");
    std::string Trimmed =
        B == std::string::npos ? std::string() : Body.substr(B, E - B + 1);
    MetaToken T = make(MetaKind::Action, Loc, std::move(Trimmed));
    T.DoubleBrace = Double;
    return T;
  }

  std::string_view Text;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  size_t TokStart = 0;
  uint32_t Line = 1, Column = 0;
};

} // namespace

std::vector<MetaToken> llstar::lexGrammarText(std::string_view Text,
                                              DiagnosticEngine &Diags) {
  return MetaLexer(Text, Diags).run();
}

const char *llstar::metaKindName(MetaKind Kind) {
  switch (Kind) {
  case MetaKind::Ident:
    return "identifier";
  case MetaKind::StrLit:
    return "string literal";
  case MetaKind::CharSet:
    return "character set";
  case MetaKind::Action:
    return "action";
  case MetaKind::Colon:
    return "':'";
  case MetaKind::Semi:
    return "';'";
  case MetaKind::Pipe:
    return "'|'";
  case MetaKind::LParen:
    return "'('";
  case MetaKind::RParen:
    return "')'";
  case MetaKind::Question:
    return "'?'";
  case MetaKind::Star:
    return "'*'";
  case MetaKind::Plus:
    return "'+'";
  case MetaKind::Tilde:
    return "'~'";
  case MetaKind::Dot:
    return "'.'";
  case MetaKind::Range:
    return "'..'";
  case MetaKind::Arrow:
    return "'->'";
  case MetaKind::DArrow:
    return "'=>'";
  case MetaKind::Eof:
    return "end of file";
  }
  return "?";
}
