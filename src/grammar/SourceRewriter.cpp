#include "grammar/SourceRewriter.h"

#include "support/Diagnostics.h"

using namespace llstar;

SourceRewriter::SourceRewriter(std::string_view Source) : Source(Source) {
  DiagnosticEngine Diags;
  Tokens = lexGrammarText(this->Source, Diags);
  if (Diags.hasErrors())
    return;
  Ok = true;

  // Index rule definitions: an Ident directly followed by ':' opens a
  // definition (optionally preceded by `fragment`); the next top-level
  // ';' closes it. The `grammar Name;` header and options/tokens blocks
  // never match Ident-then-Colon.
  for (size_t I = 0; I + 1 < Tokens.size(); ++I) {
    if (Tokens[I].Kind != MetaKind::Ident ||
        Tokens[I + 1].Kind != MetaKind::Colon)
      continue;
    RuleEntry E;
    E.Name = Tokens[I].Text;
    E.FirstTok = I;
    if (I > 0 && Tokens[I - 1].Kind == MetaKind::Ident &&
        Tokens[I - 1].Text == "fragment")
      E.FirstTok = I - 1;
    size_t J = I + 2;
    while (J < Tokens.size() && Tokens[J].Kind != MetaKind::Semi &&
           Tokens[J].Kind != MetaKind::Eof)
      ++J;
    if (J >= Tokens.size() || Tokens[J].Kind != MetaKind::Semi)
      break; // unterminated rule; index what we have so far
    E.LastTok = J;
    Rules.push_back(std::move(E));
    I = J;
  }
}

const SourceRewriter::RuleEntry *
SourceRewriter::findRule(const std::string &Name) const {
  for (const RuleEntry &E : Rules)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

SourceSpan SourceRewriter::ruleSpan(const std::string &Name) const {
  const RuleEntry *E = findRule(Name);
  if (!E)
    return {};
  SourceSpan S;
  S.Begin = Tokens[E->FirstTok].Offset;
  S.End = Tokens[E->LastTok].EndOffset;
  // Extend backward over the line's indentation and forward over trailing
  // spaces plus one newline, so deleting the span deletes whole lines.
  while (S.Begin > 0 &&
         (Source[S.Begin - 1] == ' ' || Source[S.Begin - 1] == '\t'))
    --S.Begin;
  while (S.End < Source.size() &&
         (Source[S.End] == ' ' || Source[S.End] == '\t'))
    ++S.End;
  if (S.End < Source.size() && Source[S.End] == '\r')
    ++S.End;
  if (S.End < Source.size() && Source[S.End] == '\n')
    ++S.End;
  return S;
}

std::vector<SourceSpan> SourceRewriter::altSpans(const std::string &Name) const {
  std::vector<SourceSpan> Out;
  const RuleEntry *E = findRule(Name);
  if (!E)
    return Out;
  // Body tokens run from after the ':' to before the ';'. Split at
  // top-level '|'. A trailing `-> action` (lexer rules) belongs to the
  // last alternative's span — reorders are only done on parser rules,
  // where arrows cannot appear.
  size_t ColonIdx = E->FirstTok;
  while (Tokens[ColonIdx].Kind != MetaKind::Colon)
    ++ColonIdx;
  size_t Begin = ColonIdx + 1;
  int Depth = 0;
  size_t AltFirst = Begin;
  auto Flush = [&](size_t AltEnd, size_t DelimOffset) {
    SourceSpan S;
    if (AltEnd > AltFirst) {
      S.Begin = Tokens[AltFirst].Offset;
      S.End = Tokens[AltEnd - 1].EndOffset;
    } else {
      // Epsilon alternative: zero-width span at the delimiter.
      S.Begin = S.End = DelimOffset;
    }
    Out.push_back(S);
  };
  for (size_t I = Begin; I <= E->LastTok; ++I) {
    MetaKind K = Tokens[I].Kind;
    if (K == MetaKind::LParen) {
      ++Depth;
    } else if (K == MetaKind::RParen) {
      --Depth;
    } else if ((K == MetaKind::Pipe && Depth == 0) || I == E->LastTok) {
      Flush(I, Tokens[I].Offset);
      AltFirst = I + 1;
    }
  }
  return Out;
}

SourceSpan SourceRewriter::synPredSpan(SourceLocation Loc) const {
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const MetaToken &T = Tokens[I];
    if (T.Kind != MetaKind::LParen || !(T.Loc == Loc))
      continue;
    int Depth = 1;
    size_t J = I + 1;
    while (J < Tokens.size() && Depth > 0) {
      if (Tokens[J].Kind == MetaKind::LParen)
        ++Depth;
      else if (Tokens[J].Kind == MetaKind::RParen)
        --Depth;
      ++J;
    }
    if (Depth != 0 || J >= Tokens.size() ||
        Tokens[J].Kind != MetaKind::DArrow)
      return {};
    SourceSpan S;
    S.Begin = T.Offset;
    S.End = Tokens[J].EndOffset;
    while (S.End < Source.size() &&
           (Source[S.End] == ' ' || Source[S.End] == '\t'))
      ++S.End;
    return S;
  }
  return {};
}

std::vector<SourceSpan>
SourceRewriter::tokenRefSpans(const std::string &Name) const {
  std::vector<SourceSpan> Out;
  for (size_t I = 0; I < Tokens.size(); ++I) {
    const MetaToken &T = Tokens[I];
    if (T.Kind != MetaKind::Ident || T.Text != Name)
      continue;
    // Skip the definition site (Ident followed by ':').
    if (I + 1 < Tokens.size() && Tokens[I + 1].Kind == MetaKind::Colon)
      continue;
    // Skip references outside any rule body (header).
    bool InRule = false;
    for (const RuleEntry &E : Rules)
      if (I > E.FirstTok && I < E.LastTok) {
        InRule = true;
        break;
      }
    if (!InRule)
      continue;
    Out.push_back({T.Offset, T.EndOffset});
  }
  return Out;
}
