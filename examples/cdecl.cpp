//===- examples/cdecl.cpp - C declaration vs definition -------------------===//
//
// Demonstrates the two predicate kinds on the paper's flagship hard case:
// C's declaration-vs-definition ambiguity plus typedef-name context
// sensitivity.
//
//  - Syntactic predicates (auto-inserted PEG mode) let the parser
//    distinguish `int f(int a);` from `int f(int a) { ... }` by
//    speculating — and the stats show it speculates only on the inputs
//    that need it.
//  - The semantic predicate {isTypeName}? consults a symbol table that
//    embedded actions maintain *during the parse*: `typedef int T12;`
//    makes `T12 x;` parse as a declaration later in the same file.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <cstdio>
#include <set>
#include <string>

using namespace llstar;

namespace {

const char *CDeclGrammar = R"(
grammar CDecl;
options { backtrack=true; memoize=true; }

translationUnit : externalDecl* EOF ;
externalDecl    : functionDef | typedefDecl | declaration ;
functionDef     : declSpecifier+ declarator compoundStatement ;
typedefDecl     : 'typedef' declSpecifier+ ID {{defineType}} ';' ;
declaration     : declSpecifier+ initDeclarator (',' initDeclarator)* ';' ;

declSpecifier : 'extern' | 'static' | 'const' | 'unsigned' | 'void'
              | 'char' | 'int' | 'long' | 'double'
              | {isTypeName}? ID
              ;
declarator       : '*'* directDeclarator ;
directDeclarator : ID declaratorSuffix* ;
declaratorSuffix : '(' paramList? ')' | '[' INT_LIT? ']' ;
paramList        : paramDecl (',' paramDecl)* ;
paramDecl        : declSpecifier+ declarator ;
initDeclarator   : declarator ('=' expression)? ;

compoundStatement : '{' statement* '}' ;
statement         : compoundStatement
                  | 'return' expression ';'
                  | declaration
                  | expression ';'
                  ;
expression : primary (('+' | '-' | '*' | '=') primary)* ;
primary    : ID ('(' argList? ')')? | INT_LIT | '(' expression ')' ;
argList    : expression (',' expression)* ;

ID      : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT_LIT : [0-9]+ ;
WS      : [ \t\r\n]+ -> skip ;
)";

const char *SampleInput = R"(
typedef unsigned long size_t2;
typedef int T12;

static int counter;
int add(int a, int b);

int add(int a, int b) {
  return a + b;
}

T12 globalValue = 42;
size_t2 bigValue;

int main() {
  T12 local = add(1, 2);
  counter = local * 2;
  return counter;
}
)";

} // namespace

int main() {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(CDeclGrammar, Diags);
  if (!AG) {
    std::fprintf(stderr, "grammar error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("%s\n\n", AG->summary().c_str());

  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);
  TokenStream Stream(L.tokenize(SampleInput, LexDiags));

  // The symbol table the predicates consult. The {{defineType}} action is
  // a double-brace "always action": it must run even during speculation,
  // because later speculative parses depend on the typedefs it records
  // (paper Section 4.3). Registering a name twice is harmless, which is
  // exactly the paper's point about idempotent/undoable {{...}} actions.
  std::set<std::string> TypeNames;
  SemanticEnv Env;
  Env.definePredicate("isTypeName", [&] {
    return TypeNames.count(Stream.LT(1).Text) > 0;
  });
  Env.defineAction("defineType", [&] {
    // The ID just matched is the previous token.
    TypeNames.insert(Stream.LT(0).Text);
  });

  DiagnosticEngine ParseDiags;
  LLStarParser P(*AG, Stream, &Env, ParseDiags);
  auto Tree = P.parse("translationUnit");
  if (!P.ok()) {
    std::fprintf(stderr, "parse failed:\n%s", ParseDiags.str().c_str());
    return 1;
  }

  std::printf("parsed %zu top-level constructs; %zu typedef names "
              "recorded:",
              Tree->numChildren(), TypeNames.size());
  for (const std::string &T : TypeNames)
    std::printf(" %s", T.c_str());
  std::printf("\n\nruntime profile:\n");
  std::printf("  decision events:       %lld\n",
              (long long)P.stats().totalEvents());
  std::printf("  events that backtracked: %lld (%.2f%%)\n",
              (long long)P.stats().backtrackEvents(),
              100.0 * P.stats().backtrackEventFraction());
  std::printf("  avg lookahead:         %.2f tokens\n",
              P.stats().avgLookahead());
  std::printf("  max lookahead:         %lld tokens (speculating across "
              "a whole function body)\n",
              (long long)P.stats().maxLookahead());
  std::printf("  memoization:           %lld hits / %lld misses\n",
              (long long)P.stats().MemoHits,
              (long long)P.stats().MemoMisses);
  return 0;
}
