//===- examples/json_validate.cpp - JSON validator ------------------------===//
//
// A deterministic-grammar showcase: JSON is LL(1), so every decision gets
// a one-token DFA, nothing ever speculates, and — this being a
// deterministic LL parser (paper Section 1) — syntax errors are precise
// and local, unlike a packrat parser which only discovers failure at the
// end of the input.
//
// Usage: json_validate [file.json]
//        (with no argument, validates built-in good and bad samples)
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace llstar;

namespace {

const char *JsonGrammar = R"(
grammar Json;
json    : value EOF ;
value   : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
object  : '{' (member (',' member)*)? '}' ;
member  : STRING ':' value ;
array   : '[' (value (',' value)*)? ']' ;

STRING : '"' (~["\\] | '\\' ["\\/bfnrtu])* '"' ;
NUMBER : '-'? ('0' | [1-9] [0-9]*) ('.' [0-9]+)? (('e' | 'E') ('+' | '-')? [0-9]+)? ;
WS     : [ \t\r\n]+ -> skip ;
)";

bool validate(const AnalyzedGrammar &AG, const Lexer &L,
              const std::string &Name, const std::string &Text) {
  DiagnosticEngine Diags;
  TokenStream Stream(L.tokenize(Text, Diags));
  if (Diags.hasErrors()) {
    std::printf("%-12s INVALID (lexical): %s", Name.c_str(),
                Diags.diagnostics().front().str().c_str());
    std::printf("\n");
    return false;
  }
  LLStarParser P(AG, Stream, nullptr, Diags);
  auto Tree = P.parse("json");
  if (!P.ok()) {
    std::printf("%-12s INVALID: %s\n", Name.c_str(),
                Diags.diagnostics().front().str().c_str());
    return false;
  }
  std::printf("%-12s valid (%zu tree nodes, %lld tokens, avg lookahead "
              "%.2f)\n",
              Name.c_str(), Tree->size(),
              (long long)Stream.size() - 1, P.stats().avgLookahead());
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(JsonGrammar, Diags);
  if (!AG) {
    std::fprintf(stderr, "grammar error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("%s\n", AG->summary().c_str());
  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);

  if (Argc > 1) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    return validate(*AG, L, Argv[1], Buffer.str()) ? 0 : 1;
  }

  validate(*AG, L, "good", R"({
    "name": "llstar",
    "version": [1, 0, "beta"],
    "strict": true,
    "nested": {"pi": 3.14159, "big": 1.2e10, "nothing": null}
  })");
  validate(*AG, L, "bad-comma", R"({"a": 1,, "b": 2})");
  validate(*AG, L, "bad-value", R"({"a": })");
  validate(*AG, L, "bad-nest", R"([1, [2, [3], 4])");
  return 0;
}
