//===- examples/generated_config.cpp - Using a generated parser -----------===//
//
// Demonstrates the ahead-of-time workflow: examples/grammars/Config.g is
// compiled by `llstar generate` during the build (see CMakeLists.txt);
// this program just links the generated module — no grammar analysis
// happens at runtime, exactly like deploying an ANTLR-generated parser.
//
//===----------------------------------------------------------------------===//

#include "ConfigParser.h"
#include "runtime/TreeUtils.h"

#include <cstdio>

int main() {
  configparser::ConfigParser Parser;

  const char *Sample = R"(
# build configuration
[build]
jobs = 8
targets = core, tests, bench
profile = "release with debug info"

[paths]
prefix = "/usr/local"
cache.dir = "/tmp/cache"
)";

  llstar::DiagnosticEngine Diags;
  llstar::TokenStream Stream = Parser.tokenize(Sample, Diags);
  auto Tree = Parser.parse(Stream, Diags);
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }

  // Walk the tree with the generated rule constants.
  auto Sections = llstar::collectRuleNodes(*Tree, configparser::RULE_section);
  std::printf("parsed %zu sections:\n", Sections.size());
  for (const llstar::ParseTree *S : Sections) {
    // section : '[' ID ']' entry* ;
    std::printf("  [%s] with %zu entries\n",
                S->child(1)->token().Text.c_str(), S->numChildren() - 3);
  }
  auto Entries = llstar::collectRuleNodes(*Tree, configparser::RULE_entry);
  for (const llstar::ParseTree *E : Entries)
    std::printf("    %-10s = %s\n", E->child(0)->token().Text.c_str(),
                llstar::treeText(*E->child(2)).c_str());
  return 0;
}
