//===- examples/quickstart.cpp - llstar in five minutes -------------------===//
//
// The minimal end-to-end tour of the public API:
//
//   1. write a grammar in the ANTLR-like meta-language,
//   2. analyze it (ATN + one lookahead DFA per decision),
//   3. tokenize some input with the grammar's own lexer rules,
//   4. parse with the LL(*) parser,
//   5. look at the tree, the diagnostics, and the decision statistics.
//
// The grammar is the paper's Section 2 example: rule s needs arbitrary
// lookahead (a cyclic DFA) to tell its third and fourth alternatives
// apart.
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <cstdio>

using namespace llstar;

int main() {
  // 1. The grammar. Parser rules start lowercase, lexer rules uppercase;
  //    quoted literals implicitly define keyword tokens.
  const char *GrammarText = R"(
grammar Quickstart;
s    : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

  // 2. Parse + analyze. All warnings/errors land in the diagnostics
  //    engine; analyzeGrammarText returns null on errors.
  DiagnosticEngine Diags;
  std::unique_ptr<AnalyzedGrammar> AG = analyzeGrammarText(GrammarText, Diags);
  if (!AG) {
    std::fprintf(stderr, "grammar error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("%s\n", AG->summary().c_str());

  // The lookahead DFA the analysis built for rule s (paper Figure 1):
  int32_t Decision =
      AG->atn().state(AG->atn().ruleStart(AG->grammar().findRule("s")))
          .Decision;
  std::printf("\nlookahead DFA for rule s:\n%s\n",
              AG->dfa(Decision).str(AG->atn()).c_str());

  // 3-5. Tokenize, parse, inspect.
  for (const char *Input : {"unsigned unsigned int x", "T x", "x = 42",
                            "= oops"}) {
    DiagnosticEngine LexDiags;
    Lexer L(AG->grammar().lexerSpec(), LexDiags);
    TokenStream Stream(L.tokenize(Input, LexDiags));

    DiagnosticEngine ParseDiags;
    LLStarParser Parser(*AG, Stream, /*Env=*/nullptr, ParseDiags);
    std::unique_ptr<ParseTree> Tree = Parser.parse("s");

    std::printf("input %-28s -> ", ("\"" + std::string(Input) + "\"").c_str());
    if (Parser.ok())
      std::printf("%s   (max lookahead %lld)\n",
                  Tree->str(AG->grammar()).c_str(),
                  (long long)Parser.stats().maxLookahead());
    else
      std::printf("syntax error: %s",
                  ParseDiags.diagnostics().front().str().c_str());
  }
  return 0;
}
