//===- examples/calculator.cpp - Expression evaluator ---------------------===//
//
// A calculator built on the paper's Section 1.1 extension: the expression
// rule is written with natural immediate left recursion and the toolkit
// rewrites it into a precedence-predicated loop automatically. Alternative
// order encodes precedence (highest first); `{assoc=right}` marks
// right-associative operators.
//
// Usage: calculator ["expression"]...
//        (with no arguments, evaluates a built-in demo set)
//
//===----------------------------------------------------------------------===//

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <cmath>
#include <cstdio>
#include <functional>

using namespace llstar;

namespace {

const char *CalcGrammar = R"(
grammar Calc;
s : e EOF ;
e : {assoc=right} e '^' e
  | '-' e
  | e ('*' | '/') e
  | e ('+' | '-') e
  | '(' e ')'
  | NUM
  ;
NUM : [0-9]+ ('.' [0-9]+)? ;
WS  : [ \t\r\n]+ -> skip ;
)";

/// Evaluates the loop-form tree the precedence rewrite produces: an
/// operand head, then (operator, operand) pairs folded left to right.
double evalNode(const ParseTree *N) {
  if (N->isToken())
    return std::strtod(N->token().Text.c_str(), nullptr);

  size_t I = 0;
  double V = 0;
  const ParseTree *Head = N->child(0);
  if (Head->isToken() && Head->token().Text == "(") {
    V = evalNode(N->child(1));
    I = 3; // '(' e ')'
  } else if (Head->isToken() && Head->token().Text == "-") {
    V = -evalNode(N->child(1));
    I = 2; // '-' e
  } else {
    V = evalNode(Head);
    I = 1;
  }
  while (I + 1 < N->numChildren() + 1 && I < N->numChildren()) {
    const std::string &Op = N->child(I)->token().Text;
    double R = evalNode(N->child(I + 1));
    if (Op == "+")
      V += R;
    else if (Op == "-")
      V -= R;
    else if (Op == "*")
      V *= R;
    else if (Op == "/")
      V /= R;
    else if (Op == "^")
      V = std::pow(V, R);
    I += 2;
  }
  return V;
}

} // namespace

int main(int Argc, char **Argv) {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(CalcGrammar, Diags);
  if (!AG) {
    std::fprintf(stderr, "grammar error:\n%s", Diags.str().c_str());
    return 1;
  }
  std::printf("rewritten expression rule:\n  %s\n",
              AG->grammar().str().c_str());

  DiagnosticEngine LexDiags;
  Lexer L(AG->grammar().lexerSpec(), LexDiags);

  std::vector<std::string> Inputs;
  for (int I = 1; I < Argc; ++I)
    Inputs.push_back(Argv[I]);
  if (Inputs.empty())
    Inputs = {"1 + 2 * 3", "2 ^ 3 ^ 2",      "-3 + 4",
              "(1 + 2) * (3 + 4)", "10 - 2 - 3", "2 * (3 + 4) ^ 2"};

  int Failures = 0;
  for (const std::string &Input : Inputs) {
    DiagnosticEngine D;
    TokenStream Stream(L.tokenize(Input, D));
    LLStarParser P(*AG, Stream, nullptr, D);
    auto Tree = P.parse("s");
    if (!P.ok()) {
      std::printf("%-22s => error: %s", Input.c_str(),
                  D.diagnostics().front().str().c_str());
      ++Failures;
      continue;
    }
    // s : e EOF ; — the expression is the first child.
    std::printf("%-22s => %g\n", Input.c_str(), evalNode(Tree->child(0)));
  }
  return Failures == 0 ? 0 : 1;
}
