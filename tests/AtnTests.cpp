//===- tests/AtnTests.cpp - ATN construction tests ------------------------===//
//
// Structural checks of the grammar -> ATN transformation (paper Figure 7
// plus EBNF cycles, Section 5.5) and the invariants the analysis and the
// interpreter rely on.
//
//===----------------------------------------------------------------------===//

#include "atn/ATN.h"
#include "atn/ATNBuilder.h"
#include "grammar/GrammarParser.h"

#include <gtest/gtest.h>

using namespace llstar;

namespace {

std::unique_ptr<Grammar> parseG(const std::string &Text) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(Text, Diags);
  EXPECT_TRUE(G) << Diags.str();
  return G;
}

TEST(Atn, InvariantOneTransitionPerNonDecisionState) {
  auto G = parseG(R"(
grammar T;
a : B c* (D | E)+ f? ;
c : C ;
f : F ;
B:'b'; C:'c'; D:'d'; E:'e'; F:'f';
)");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  for (size_t S = 0; S < M->numStates(); ++S) {
    const AtnState &State = M->state(int32_t(S));
    if (State.Kind == AtnStateKind::RuleStop) {
      EXPECT_TRUE(State.Transitions.empty()) << "state " << S;
      continue;
    }
    if (State.isDecision()) {
      EXPECT_GE(State.Transitions.size(), 2u) << "state " << S;
      for (const AtnTransition &T : State.Transitions)
        EXPECT_EQ(T.Kind, AtnTransitionKind::Epsilon)
            << "decision transitions must be epsilon; state " << S;
      EXPECT_GE(State.EndState, 0) << "decision needs an end state";
      continue;
    }
    EXPECT_EQ(State.Transitions.size(), 1u) << "state " << S;
  }
}

TEST(Atn, DecisionCountMatchesConstructs) {
  // rule a has 1 alt; decisions: c* loop, (D|E) block, + loopback, f? opt.
  auto G = parseG(R"(
grammar T;
a : B c* (D | E)+ f? ;
c : C ;
f : F ;
B:'b'; C:'c'; D:'d'; E:'e'; F:'f';
)");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  EXPECT_EQ(M->numDecisions(), 4u);
}

TEST(Atn, MultiAltRuleStartIsDecision) {
  auto G = parseG("grammar T; a : B | C | D ; B:'b'; C:'c'; D:'d';");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  const AtnState &Start = M->state(M->ruleStart(0));
  EXPECT_TRUE(Start.isDecision());
  EXPECT_EQ(Start.Transitions.size(), 3u);
  EXPECT_EQ(Start.EndState, M->ruleStop(0));
}

TEST(Atn, RuleTransitionsCarryFollowState) {
  auto G = parseG(R"(
grammar T;
a : b C ;
b : B ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  int32_t RuleB = G->findRule("b");
  const auto &Sites = M->callSitesOf(RuleB);
  ASSERT_EQ(Sites.size(), 1u);
  const AtnTransition &T =
      M->state(Sites[0].first).Transitions[size_t(Sites[0].second)];
  EXPECT_EQ(T.Kind, AtnTransitionKind::Rule);
  EXPECT_EQ(T.Target, M->ruleStart(RuleB));
  EXPECT_GE(T.FollowState, 0);
  // The follow state eventually leads to the C atom.
  const AtnState &Follow = M->state(T.FollowState);
  ASSERT_EQ(Follow.Transitions.size(), 1u);
  EXPECT_EQ(Follow.Transitions[0].Kind, AtnTransitionKind::Atom);
}

TEST(Atn, EofStateSelfLoops) {
  auto G = parseG("grammar T; a : B ; B:'b';");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  ASSERT_GE(M->eofState(), 0);
  const AtnState &Eof = M->state(M->eofState());
  ASSERT_EQ(Eof.Transitions.size(), 1u);
  EXPECT_EQ(Eof.Transitions[0].Kind, AtnTransitionKind::Atom);
  EXPECT_EQ(Eof.Transitions[0].Label, TokenEof);
  EXPECT_EQ(Eof.Transitions[0].Target, Eof.Id);
}

TEST(Atn, PredicatesAndActionsInterned) {
  auto G = parseG(R"(
grammar T;
a : {p}? B {act} | {p}? C {act} ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  // Same name -> same table entry.
  EXPECT_EQ(M->numPredicates(), 1u);
  EXPECT_EQ(M->predicate(0).Name, "p");
  EXPECT_FALSE(M->predicate(0).isPrecedence());
}

TEST(Atn, StarLoopShape) {
  auto G = parseG("grammar T; a : B* C ; B:'b'; C:'c';");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  // Find the star loop entry.
  const AtnState *Entry = nullptr;
  for (size_t S = 0; S < M->numStates(); ++S)
    if (M->state(int32_t(S)).Kind == AtnStateKind::StarLoopEntry)
      Entry = &M->state(int32_t(S));
  ASSERT_NE(Entry, nullptr);
  EXPECT_TRUE(Entry->isDecision());
  // Body alternative first, exit last; body loops back to the entry.
  ASSERT_EQ(Entry->Transitions.size(), 2u);
  EXPECT_EQ(Entry->EndState, Entry->Id);
  int32_t BodyLeft = Entry->Transitions[0].Target;
  // Walk the body: B atom then epsilon back to entry.
  const AtnState &Left = M->state(BodyLeft);
  ASSERT_EQ(Left.Transitions.size(), 1u);
  EXPECT_EQ(Left.Transitions[0].Kind, AtnTransitionKind::Atom);
  const AtnState &AfterB = M->state(Left.Transitions[0].Target);
  ASSERT_EQ(AfterB.Transitions.size(), 1u);
  EXPECT_EQ(AfterB.Transitions[0].Target, Entry->Id);
}

TEST(Atn, DumpContainsRuleNames) {
  auto G = parseG("grammar T; a : b ; b : B ; B:'b';");
  ASSERT_TRUE(G);
  auto M = buildAtn(*G);
  std::string S = M->str();
  EXPECT_NE(S.find("rule a"), std::string::npos);
  EXPECT_NE(S.find("-rule(b)->"), std::string::npos);
}

} // namespace
