//===- tests/CodegenTests.cpp - Serialization and code generation ---------===//
//
// Round-trip tests for the compiled-grammar format and the generated C++
// module: a deserialized grammar must lex, predict, and parse exactly like
// the freshly analyzed one — including backtracking grammars with
// predicate edges and precedence-rewritten rules.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "codegen/CppGenerator.h"
#include "codegen/Serializer.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

/// Parses \p Input with both the original and a round-tripped grammar and
/// compares outcome + tree shape.
void expectRoundTripParse(const AnalyzedGrammar &AG, const std::string &Text,
                          const std::string &Input,
                          const std::string &StartRule) {
  std::string Blob = serializeGrammar(AG);
  DiagnosticEngine Diags;
  auto CG = deserializeGrammar(Blob, Diags);
  ASSERT_TRUE(CG) << Diags.str() << "\nblob:\n" << Blob.substr(0, 400);

  // Original.
  TokenStream S1 = lexOrFail(AG, Input);
  DiagnosticEngine D1;
  LLStarParser P1(AG, S1, nullptr, D1);
  auto T1 = P1.parse(StartRule);

  // Round-tripped (uses the deserialized lexer tables too).
  DiagnosticEngine LexDiags;
  TokenStream S2(CG->tokenize(Input, LexDiags));
  ASSERT_FALSE(LexDiags.hasErrors()) << LexDiags.str();
  DiagnosticEngine D2;
  LLStarParser P2(*CG->AG, S2, nullptr, D2);
  auto T2 = P2.parse(StartRule);

  EXPECT_EQ(P1.ok(), P2.ok()) << "input: " << Input << "\n"
                              << D1.str() << D2.str();
  if (P1.ok() && P2.ok()) {
    EXPECT_EQ(T1->str(AG.grammar()), T2->str(CG->AG->grammar()));
  }
  (void)Text;
}

TEST(Codegen, RoundTripSimpleGrammar) {
  const char *Text = R"(
grammar T;
s : ID '=' INT ';' | ID '(' ')' ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  expectRoundTripParse(*AG, Text, "x = 5 ;", "s");
  expectRoundTripParse(*AG, Text, "f ( ) ;", "s");
  expectRoundTripParse(*AG, Text, "f ( oops ;", "s");
}

TEST(Codegen, RoundTripPreservesStructures) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; m=2; }
s    : '-'* ID | expr ;
expr : INT | '-' expr ;
w    : . ~ID ;
ID   : [a-zA-Z_]+ ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  std::string Blob = serializeGrammar(*AG);
  DiagnosticEngine Diags;
  auto CG = deserializeGrammar(Blob, Diags);
  ASSERT_TRUE(CG) << Diags.str();

  // Options.
  EXPECT_TRUE(CG->AG->grammar().Options.Backtrack);
  EXPECT_EQ(CG->AG->grammar().Options.MaxRecursionDepth, 2);
  // Decision classification survives.
  ASSERT_EQ(CG->AG->numDecisions(), AG->numDecisions());
  for (size_t D = 0; D < AG->numDecisions(); ++D) {
    EXPECT_EQ(CG->AG->dfa(int32_t(D)).decisionClass(),
              AG->dfa(int32_t(D)).decisionClass())
        << "decision " << D;
    EXPECT_EQ(CG->AG->dfa(int32_t(D)).str(CG->AG->atn()),
              AG->dfa(int32_t(D)).str(AG->atn()))
        << "decision " << D;
  }
  // Static stats recomputed identically.
  EXPECT_EQ(CG->AG->stats().NumBacktrack, AG->stats().NumBacktrack);
  EXPECT_EQ(CG->AG->stats().NumFixed, AG->stats().NumFixed);
}

TEST(Codegen, RoundTripBacktrackingParse) {
  const char *Text = R"(
grammar T;
options { backtrack=true; m=1; }
t    : '-'* ID | expr ;
expr : INT | '-' expr ;
ID   : [a-zA-Z_]+ ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  expectRoundTripParse(*AG, Text, "- - - x", "t");
  expectRoundTripParse(*AG, Text, "- - - 7", "t");
}

TEST(Codegen, RoundTripPrecedenceRules) {
  const char *Text = R"(
grammar E;
e : e '*' e | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  EXPECT_TRUE(AG->grammar().rule(0).IsPrecedenceRule);
  expectRoundTripParse(*AG, Text, "1+2*3", "e");
  expectRoundTripParse(*AG, Text, "1*2+3*4", "e");
}

TEST(Codegen, CorruptBlobsRejected) {
  auto AG = analyzeOrFail("grammar T; a : B ; B:'b';");
  ASSERT_TRUE(AG);
  std::string Blob = serializeGrammar(*AG);

  DiagnosticEngine D1;
  EXPECT_EQ(deserializeGrammar("not a grammar", D1), nullptr);
  EXPECT_TRUE(D1.hasErrors());

  DiagnosticEngine D2;
  EXPECT_EQ(deserializeGrammar(Blob.substr(0, Blob.size() / 2), D2), nullptr);
  EXPECT_TRUE(D2.hasErrors());
}

TEST(Codegen, GeneratedCppShape) {
  auto AG = analyzeOrFail(R"(
grammar Calc;
e : t ('+' t)* ;
t : INT ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  GeneratedParser P = generateCppParser(*AG, "CalcParser");

  EXPECT_NE(P.Header.find("class CalcParser"), std::string::npos);
  EXPECT_NE(P.Header.find("RULE_e = 0"), std::string::npos);
  EXPECT_NE(P.Header.find("RULE_t = 1"), std::string::npos);
  EXPECT_NE(P.Header.find("TOK_INT"), std::string::npos);
  EXPECT_NE(P.Header.find("LIT_plus ="), std::string::npos);
  EXPECT_NE(P.Header.find("namespace calcparser"), std::string::npos);

  EXPECT_NE(P.Source.find("kGrammarTables"), std::string::npos);
  EXPECT_NE(P.Source.find("deserializeGrammar"), std::string::npos);
  // The blob embedded in the source must round-trip after C++ string
  // escaping: extract is hard, so instead verify the raw blob loads.
  DiagnosticEngine Diags;
  EXPECT_NE(deserializeGrammar(serializeGrammar(*AG), Diags), nullptr)
      << Diags.str();
}

TEST(Codegen, RoundTripSemanticPredicates) {
  const char *Text = R"(
grammar T;
stat : {isType}? ID ID ';' | ID ID ';' ;
ID : [a-zA-Z]+ ;
WS : [ \t\r\n]+ -> skip ;
)";
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  std::string Blob = serializeGrammar(*AG);
  DiagnosticEngine Diags;
  auto CG = deserializeGrammar(Blob, Diags);
  ASSERT_TRUE(CG) << Diags.str();

  for (bool IsType : {true, false}) {
    SemanticEnv Env;
    Env.definePredicate("isType", [&] { return IsType; });
    DiagnosticEngine LexDiags;
    TokenStream Stream(CG->tokenize("T x ;", LexDiags));
    DiagnosticEngine PD;
    LLStarParser P(*CG->AG, Stream, &Env, PD);
    P.parse("stat");
    EXPECT_TRUE(P.ok()) << PD.str();
    EXPECT_TRUE(PD.empty()) << PD.str(); // predicate found, no warnings
  }
}

} // namespace
