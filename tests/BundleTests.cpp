//===- tests/BundleTests.cpp - Versioned bundle container robustness ------===//
//
// The `llstarbundle` container and the hardened deserializer must reject —
// never crash on — truncated, bit-flipped, or otherwise mangled input. A
// corrupt bundle on disk is an operational fact of life for the parse
// service; the failure mode has to be a diagnostic, not UB.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "codegen/Serializer.h"
#include "service/GrammarBundleCache.h"

#include <gtest/gtest.h>

#include <random>

using namespace llstar;
using namespace llstar::test;

namespace {

const char *BundleGrammar = R"(
grammar Bundled;
s    : stmt* EOF ;
stmt : ID '=' expr ';' | 'if' expr 'then' stmt ;
expr : ID | INT | '(' expr expr ')' ;
ID   : [a-z]+ ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

std::string makeBundle() {
  auto AG = analyzeOrFail(BundleGrammar);
  EXPECT_TRUE(AG);
  return writeBundle(*AG);
}

TEST(BundleTest, RoundTripParsesIdentically) {
  auto AG = analyzeOrFail(BundleGrammar);
  ASSERT_TRUE(AG);
  std::string Bytes = writeBundle(*AG);
  EXPECT_TRUE(looksLikeBundle(Bytes));
  EXPECT_FALSE(looksLikeBundle(BundleGrammar));

  DiagnosticEngine Diags;
  auto CG = readBundle(Bytes, Diags);
  ASSERT_TRUE(CG) << Diags.str();

  for (const char *Input : {"a = 1 ;", "if a then b = ( c 2 ) ;", "x y"}) {
    DiagnosticEngine LexDiags;
    TokenStream Stream(CG->tokenize(Input, LexDiags));
    DiagnosticEngine D1, D2;
    LLStarParser P1(*CG->AG, Stream, nullptr, D1);
    auto T1 = P1.parse("");
    TokenStream S2 = lexOrFail(*AG, Input);
    LLStarParser P2(*AG, S2, nullptr, D2);
    auto T2 = P2.parse("");
    EXPECT_EQ(P1.ok(), P2.ok()) << Input;
    if (P1.ok() && P2.ok()) {
      EXPECT_EQ(T1->str(CG->AG->grammar()), T2->str(AG->grammar()));
    }
  }
}

TEST(BundleTest, RejectsWrongMagicAndVersions) {
  std::string Bytes = makeBundle();

  DiagnosticEngine D1;
  EXPECT_EQ(readBundle("not a bundle at all", D1), nullptr);
  EXPECT_NE(D1.str().find("missing 'llstarbundle' header"),
            std::string::npos);

  // Same payload, future version: must refuse rather than misparse.
  std::string Future = Bytes;
  size_t VersionPos = Future.find(' ') + 1;
  Future[VersionPos] = '9';
  DiagnosticEngine D2;
  EXPECT_EQ(readBundle(Future, D2), nullptr);
  EXPECT_NE(D2.str().find("unsupported bundle format version"),
            std::string::npos);
}

TEST(BundleTest, RejectsHeaderOverflowWithoutThrowing) {
  // Digit runs past int64 range previously fed std::stoll, which throws.
  for (const char *Evil :
       {"llstarbundle 99999999999999999999999999 4 1\nabcd",
        "llstarbundle 1 99999999999999999999999999 1\nabcd",
        "llstarbundle 1 4 99999999999999999999999999999999\nabcd",
        "llstarbundle - 4 1\nabcd", "llstarbundle\n", "llstarbundle 1",
        "llstarbundle 1 4 1"}) {
    DiagnosticEngine Diags;
    EXPECT_EQ(readBundle(Evil, Diags), nullptr) << Evil;
    EXPECT_TRUE(Diags.hasErrors()) << Evil;
  }
}

TEST(BundleTest, RejectsEveryTruncation) {
  std::string Bytes = makeBundle();
  // Every prefix must load cleanly or fail cleanly — never crash. Step 7
  // keeps the loop fast while still hitting header, table, and mid-number
  // cut points.
  for (size_t Len = 0; Len < Bytes.size(); Len += 7) {
    DiagnosticEngine Diags;
    EXPECT_EQ(readBundle(Bytes.substr(0, Len), Diags), nullptr)
        << "prefix of " << Len << " bytes";
    EXPECT_TRUE(Diags.hasErrors());
  }
}

TEST(BundleTest, RejectsSeededByteFlips) {
  std::string Bytes = makeBundle();
  std::mt19937_64 Rng(0xb1f5ed);
  for (int Trial = 0; Trial < 200; ++Trial) {
    std::string Mangled = Bytes;
    int Flips = 1 + int(Rng() % 4);
    for (int F = 0; F < Flips; ++F)
      Mangled[Rng() % Mangled.size()] ^= char(1 << (Rng() % 8));
    // Whatever the flip hit — header digits, the hash, table numbers — the
    // reader must return null or a (rare) valid grammar, never crash.
    DiagnosticEngine Diags;
    auto CG = readBundle(Mangled, Diags);
    if (!CG) {
      EXPECT_TRUE(Diags.hasErrors()) << "trial " << Trial;
    }
  }
}

TEST(BundleTest, RejectsMangledPayloadTables) {
  // Bypass the container hash and attack the deserializer itself: the
  // payload-level fuzz that drove the bounds validation in readGrammar.
  auto AG = analyzeOrFail(BundleGrammar);
  ASSERT_TRUE(AG);
  std::string Payload = serializeGrammar(*AG);
  std::mt19937_64 Rng(0xdead5eed);
  for (int Trial = 0; Trial < 300; ++Trial) {
    std::string Mangled = Payload;
    int Edits = 1 + int(Rng() % 8);
    for (int E = 0; E < Edits; ++E) {
      size_t Pos = Rng() % Mangled.size();
      switch (Rng() % 3) {
      case 0: // flip a bit
        Mangled[Pos] ^= char(1 << (Rng() % 8));
        break;
      case 1: // overwrite with a digit (perturbs table indices)
        Mangled[Pos] = char('0' + Rng() % 10);
        break;
      default: // splice in a huge number
        Mangled.insert(Pos, "999999999999999999999");
        break;
      }
    }
    DiagnosticEngine Diags;
    auto CG = deserializeGrammar(Mangled, Diags);
    if (CG) {
      // Survivors must be structurally usable, not just non-null.
      DiagnosticEngine LexDiags;
      TokenStream Stream(CG->tokenize("a = 1 ;", LexDiags));
      DiagnosticEngine ParseDiags;
      LLStarParser P(*CG->AG, Stream, nullptr, ParseDiags);
      P.parse("");
    }
  }
}

TEST(BundleTest, ReportsPayloadCorruptionPrecisely) {
  std::string Bytes = makeBundle();
  size_t PayloadStart = Bytes.find('\n') + 1;

  std::string Flipped = Bytes;
  Flipped[PayloadStart + 10] ^= 0x20;
  DiagnosticEngine D1;
  EXPECT_EQ(readBundle(Flipped, D1), nullptr);
  EXPECT_NE(D1.str().find("hash mismatch"), std::string::npos);

  std::string Short = Bytes.substr(0, Bytes.size() - 5);
  DiagnosticEngine D2;
  EXPECT_EQ(readBundle(Short, D2), nullptr);
  EXPECT_NE(D2.str().find("header declares"), std::string::npos);
}

} // namespace
