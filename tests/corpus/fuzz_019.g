// fuzz corpus grammar 19 (seed 8787398949324820801, master seed 2026)
grammar F820801;
s : r2 EOF | r1 EOF ;
r1 : ('k4')=> 'k4' | 'k5' r2 ;
r2 : 'k0' | 'k1' 'k2' | 'k3' ID INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
