// fuzz corpus grammar 22 (seed 8138195586951079715, master seed 2026)
grammar F79715;
s : r5 EOF | r4 EOF ;
r1 : 'k21' 'k22' ('k23')=> {p0}? 'k23' 'k24' ( 'k29' ( 'k25' {a0} ID | 'k27' 'k26' )+ ID 'k28' )+ | 'k21' 'k22' 'k30' 'k31' INT ex ;
r2 : r3 'k16' 'k17' ( 'k20' 'k18' 'k19' )? ;
r3 : 'k10'* 'k11' 'k12' r4 'k13' | 'k10'* 'k11' 'k14' 'k15' ;
r4 : 'k9' ;
r5 : 'k4' ID ex ( 'k7' ID 'k5' 'k6' | 'k8' ex ID )? ;
ex : ex 'k0' ex | ex 'k1' ex | 'k3' ex 'k2' | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
