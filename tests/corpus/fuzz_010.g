// fuzz corpus grammar 10 (seed 10995976849990344965, master seed 2026)
grammar F344965;
s : r1 EOF ;
r1 : 'k21' ( 'k23' r2 'k22' | 'k26' 'k24' 'k25' )+ ex ( 'k28' {{a0}} ( 'k27' )* ) ;
r2 : r3 r3 'k19' 'k20' ;
r3 : 'k18' ;
r4 : 'k10'* 'k11'* {p0}? 'k12' INT 'k13' 'k14' | 'k10'* 'k11'* 'k15' | 'k10'* 'k11'* 'k16' ID ID 'k17' ;
r5 : 'k4' | 'k5' ( 'k7' 'k6' | 'k8' INT )? | 'k9' ;
ex : ex 'k0' ex | ex 'k1' ex | 'k3' ex 'k2' | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
