// fuzz corpus grammar 11 (seed 2377187763037528891, master seed 2026)
grammar F528891;
s : r1 EOF ;
r1 : 'k11' r2 'k12' 'k13' | r2 | 'k14' 'k15' 'k16' 'k17' ;
r2 : 'k0' 'k1' ( 'k2' | 'k7' ( 'k4' {{a0}} 'k3' {a1} | 'k6' 'k5' {a2} )+ ID ) | 'k8' | 'k9' 'k10' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
