// fuzz corpus grammar 15 (seed 12413897265106193721, master seed 2026)
grammar F193721;
s : r1 EOF ;
r1 : 'k15' 'k16' ID r2 | 'k17' r4 | r4 r3 ( 'k19' 'k18' )+ r4 ;
r2 : {p1}? 'k12' 'k13' 'k14' ;
r3 : 'k10' 'k11' {a0} ;
r4 : {p0}? 'k0' 'k1' 'k2' ( 'k3' | 'k6' ( 'k4' )+ 'k5' ID )? | 'k7' | 'k8' 'k9' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
