// fuzz corpus grammar 14 (seed 567598966279698200, master seed 2026)
grammar F698200;
s : r1 EOF ;
r1 : 'k15'* 'k16' ( 'k19' r3 'k17' 'k18' | 'k20' )+ ( 'k21' ID | 'k25' INT ( 'k22' | 'k23' ) 'k24' )? | 'k15'* 'k26' INT r5 ;
r2 : 'k11' ('k12')=> 'k12' 'k13' ID | 'k11' 'k14' r4 ;
r3 : 'k10' ;
r4 : 'k2'* 'k3' 'k4' ( 'k5' ) 'k6' 'k7' | 'k2'* 'k3' 'k8' 'k9' {{a0}} ;
r5 : {p0}? 'k0' | 'k1' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
