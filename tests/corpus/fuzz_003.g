// fuzz corpus grammar 3 (seed 8922000368357144215, master seed 2026)
grammar F144215;
s : r8 EOF | r7 EOF ;
r1 : 'k31' ID 'k32' ;
r2 : 'k23' 'k24' 'k25' 'k26' | 'k23' 'k24' 'k27' r4 INT | 'k23' 'k24' 'k28' 'k29' 'k30' {a1} ;
r3 : 'k19'* 'k20' 'k21' r4 r4 ID | 'k19'* 'k20' 'k22' ;
r4 : 'k12' ('k13')=> 'k13' 'k14' r7 INT | 'k12' 'k15' 'k16' 'k17' 'k18' ;
r5 : 'k11' ID ;
r6 : 'k10' r8 r8 ID ;
r7 : 'k7' 'k8' ( 'k9' )+ INT ;
r8 : 'k0' 'k1' 'k2' {a0} | 'k0' 'k3' | 'k0' 'k4' 'k5' 'k6' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
