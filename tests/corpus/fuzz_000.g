// fuzz corpus grammar 0 (seed 15409682558769555168, master seed 2026)
grammar F555168;
s : r1 EOF ;
r1 : 'k9' INT ( 'k11' 'k10' {a1} | 'k12' )* ;
r2 : 'k5'* 'k6'* 'k7' | 'k5'* 'k6'* 'k8' r3 {a0} r3 ;
r3 : 'k0'* 'k1' {p0}? 'k2' | 'k0'* 'k1' {p1}? 'k3' | 'k0'* 'k1' {p2}? 'k4' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
