// fuzz corpus grammar 2 (seed 16584499457043039071, master seed 2026)
grammar F39071;
s : r7 EOF | r6 EOF ;
r1 : 'k32' ( 'k34' 'k33' ) 'k35' 'k36' | 'k37' | 'k38' ;
r2 : r5 | 'k28' 'k29' | 'k30' r6 'k31' {a3} ;
r3 : 'k24' 'k25' 'k26' | r5 INT | 'k27' ;
r4 : 'k23' r5 ID {{a2}} ;
r5 : 'k22' r6 ;
r6 : 'k14' 'k15' 'k16' ( 'k17' r7 ID | 'k19' 'k18' )+ | 'k14' 'k15' 'k20' | 'k14' 'k15' 'k21' r7 ID INT ;
r7 : 'k0'* 'k1' ID ( 'k4' 'k2' ID 'k3' | 'k11' ID ( 'k6' ID 'k5' | 'k8' 'k7' {{a0}} ID )+ ( 'k9' INT ID | 'k10' ID {{a1}} ID ) )* | 'k0'* 'k12' INT ( 'k13' )* ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
