// fuzz corpus grammar 12 (seed 9488837311234384219, master seed 2026)
grammar F384219;
s : r1 EOF ;
r1 : 'k28'* 'k29' 'k30' 'k31' ID ID | 'k28'* 'k29' 'k32' ( 'k33' | 'k34' INT ID INT ) ;
r2 : 'k20' | r3 'k21' INT ( 'k26' ( 'k24' 'k22' 'k23' )? {{a1}} 'k25' )* | 'k27' ;
r3 : 'k15' 'k16' 'k17' 'k18' | 'k15' 'k16' 'k19' ;
r4 : 'k0' ( 'k8' ( 'k1' | 'k3' 'k2' )+ ( 'k5' 'k4' | 'k6' ID {{a0}} ) ( 'k7' ) )? | 'k9' 'k10' ( 'k11' | 'k12' ) | 'k13' 'k14' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
