// fuzz corpus grammar 5 (seed 2980472110671578589, master seed 2026)
grammar F578589;
s : r1 EOF ;
r1 : 'k24' INT 'k25' 'k26' ;
r2 : r6 'k23' ;
r3 : 'k15' 'k16' 'k17' 'k18' 'k19' r4 | 'k15' 'k16' {p0}? 'k20' 'k21' | 'k15' 'k16' 'k22' ;
r4 : 'k14' ;
r5 : r6 r6 ;
r6 : 'k6'* 'k7' 'k8' 'k9' INT ex | 'k6'* 'k7' 'k10' ( 'k12' 'k11' INT ID | 'k13' )? ;
ex : ex 'k0' ex | ex 'k1' ex | ex 'k2' ex | 'k3' ex | 'k5' ex 'k4' | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
