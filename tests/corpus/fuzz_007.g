// fuzz corpus grammar 7 (seed 5481116521511003259, master seed 2026)
grammar F3259;
s : r1 EOF ;
r1 : 'k29' 'k30' ID | 'k31' 'k32' ID ID ;
r2 : r4 'k25' ( 'k26' | 'k28' 'k27' INT INT )+ ;
r3 : 'k20' ( 'k23' ( 'k21' {a2} )? 'k22' )* 'k24' ID ;
r4 : 'k17' 'k18' 'k19' r5 ;
r5 : 'k0' ( 'k3' ( 'k2' 'k1' {a0} )+ | 'k7' 'k4' 'k5' 'k6' )+ 'k8' 'k9' | {p0}? 'k10' ( 'k13' {a1} 'k11' 'k12' | 'k16' 'k14' 'k15' ID )? ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
