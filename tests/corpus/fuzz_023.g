// fuzz corpus grammar 23 (seed 8395333350943918559, master seed 2026)
grammar F918559;
s : r1 EOF ;
r1 : 'k29' 'k30' ;
r2 : 'k23' 'k24' ('k25')=> 'k25' ID | 'k23' 'k24' 'k26' | 'k23' 'k24' 'k27' {{a5}} ( 'k28' INT )? ID ;
r3 : 'k11'* 'k12' ID ex ( 'k14' 'k13' INT INT | 'k17' ( 'k15' ID {a1} | 'k16' {a2} ) r5 ) | 'k11'* 'k18' r5 'k19' 'k20' | 'k11'* 'k21' 'k22' {{a3}} {a4} ;
r4 : 'k8' ex 'k9' 'k10' | r5 ex ;
r5 : 'k4' 'k5' 'k6' INT {a0} ID | 'k4' 'k5' 'k7' ID ;
ex : ex 'k0' ex | ex 'k1' ex | 'k3' ex 'k2' | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
