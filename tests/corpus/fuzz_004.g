// fuzz corpus grammar 4 (seed 8648100648882743746, master seed 2026)
grammar F743746;
s : r1 EOF ;
r1 : 'k30'* ('k31')=> 'k31' ( 'k32' r7 | 'k33' ID )? ID ID | 'k30'* 'k34' INT ( 'k35' {{a3}} | 'k36' INT r5 r2 ) ID | 'k30'* 'k37' ID ;
r2 : {p0}? 'k28' 'k29' {a2} ;
r3 : 'k17' 'k18' | 'k17' 'k19' 'k20' ( 'k25' ( 'k21' )+ ( 'k23' 'k22' r7 | 'k24' {a1} )* | 'k26' ID )? 'k27' ;
r4 : 'k14' 'k15' ( 'k16' )* ;
r5 : 'k7' 'k8' | 'k7' 'k9' ( 'k13' 'k10' 'k11' 'k12' )* {a0} ;
r6 : 'k4' | 'k5' | r7 'k6' ;
r7 : 'k0' 'k1' 'k2' 'k3' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
