// fuzz corpus grammar 21 (seed 9704857206764516246, master seed 2026)
grammar F516246;
s : r1 EOF ;
r1 : 'k13' 'k14' ('k15')=> {p0}? 'k15' | 'k13' 'k14' 'k16' INT r3 ID | 'k13' 'k14' 'k17' ;
r2 : 'k10' 'k11' 'k12' ;
r3 : 'k3' ex ( 'k5' 'k4' )* | 'k6' 'k7' 'k8' 'k9' ;
ex : ex 'k0' ex | ex 'k1' ex | ex 'k2' ex | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
