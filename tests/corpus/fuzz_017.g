// fuzz corpus grammar 17 (seed 8221295405094648403, master seed 2026)
grammar F648403;
s : r1 EOF ;
r1 : 'k34' ID | 'k35' 'k36' 'k37' ;
r2 : ('k29')=> 'k29' ( 'k31' 'k30' INT )+ | 'k32' | 'k33' ;
r3 : 'k28' ;
r4 : 'k24' 'k25' | 'k24' 'k26' | 'k24' 'k27' ;
r5 : 'k22' INT r7 | 'k23' ID ;
r6 : 'k16' ('k17')=> 'k17' | 'k16' 'k18' ( 'k19' ID ID r7 )? 'k20' 'k21' ;
r7 : 'k15' ;
r8 : 'k4' 'k5' 'k6' | 'k7' ( 'k11' ( 'k8' INT ex ex | 'k10' INT 'k9' {a0} )? | 'k12' )? 'k13' | 'k14' ;
ex : ex 'k0' ex | ex 'k1' ex | ex 'k2' ex | 'k3' ex | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
