// fuzz corpus grammar 20 (seed 3097554474149747684, master seed 2026)
grammar F747684;
s : r1 EOF ;
r1 : 'k6' 'k7'* {p0}? 'k8' ( 'k14' ( 'k9' | 'k10' {a0} ) 'k11' ( 'k13' 'k12' r2 )? | 'k17' ( 'k15' )? 'k16' ) | 'k6' 'k7'* 'k18' | 'k6' 'k7'* 'k19' r2 ;
r2 : 'k0'* 'k1' 'k2' | 'k0'* 'k3' 'k4' INT | 'k0'* 'k5' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
