// fuzz corpus grammar 8 (seed 4858512127333043893, master seed 2026)
grammar F43893;
s : r5 EOF | r4 EOF ;
r1 : 'k40' ( 'k42' r2 r5 'k41' )? ID ;
r2 : r3 ( 'k27' | 'k30' INT 'k28' 'k29' )* ( 'k31' ID | 'k32' ) | {p1}? 'k33' ( 'k34' )? | 'k35' ( 'k36' | 'k39' r3 ( 'k37' r4 r5 | 'k38' ID r3 )? ) ;
r3 : 'k21' ID | 'k22' 'k23' 'k24' | 'k25' 'k26' ;
r4 : 'k14' 'k15' 'k16' 'k17' | 'k14' 'k18' | 'k14' 'k19' INT 'k20' ;
r5 : 'k0' 'k1' ('k2')=> 'k2' | 'k0' 'k1' {p0}? 'k3' ( 'k6' ID ( 'k5' ID 'k4' ) | 'k7' )? | 'k0' 'k1' 'k8' ( 'k11' 'k9' 'k10' | 'k12' )+ 'k13' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
