// fuzz corpus grammar 6 (seed 18172026907813386119, master seed 2026)
grammar F386119;
s : r1 EOF ;
r1 : 'k31' ID ;
r2 : 'k29' | r5 'k30' ID {a3} ;
r3 : {p1}? 'k27' {{a2}} | r5 ID | 'k28' ID ;
r4 : r7 r7 'k26' ;
r5 : 'k19'* 'k20'* {p0}? 'k21' | 'k19'* 'k20'* 'k22' INT 'k23' | 'k19'* 'k20'* 'k24' 'k25' ;
r6 : ('k15')=> 'k15' 'k16' r7 | 'k17' 'k18' ID ;
r7 : ('k0')=> 'k0' ID ( 'k1' | 'k5' ID ( 'k2' {a0} | 'k3' )* 'k4' )? ( 'k8' 'k6' ( 'k7' )+ | 'k12' 'k9' ( 'k10' )* ( 'k11' {{a1}} )? ) | 'k13' | 'k14' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
