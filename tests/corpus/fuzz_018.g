// fuzz corpus grammar 18 (seed 2945915780690457584, master seed 2026)
grammar F457584;
s : r1 EOF ;
r1 : 'k3'* 'k4' r2 ID INT | 'k3'* 'k5' | 'k3'* 'k6' 'k7' 'k8' ;
r2 : 'k0' INT 'k1' 'k2' ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
