// fuzz corpus grammar 1 (seed 1528388520586698580, master seed 2026)
grammar F698580;
s : r7 EOF | r6 EOF ;
r1 : 'k23' ( 'k25' 'k24' r2 INT | 'k26' )? r5 ( 'k27' | 'k34' {a1} ( 'k29' 'k28' INT ID | 'k32' 'k30' 'k31' ID ) 'k33' ) ;
r2 : {p1}? 'k21' INT 'k22' r3 ;
r3 : 'k20' INT ;
r4 : {p0}? 'k19' INT ;
r5 : 'k15' INT ( 'k17' 'k16' r6 | 'k18' ID ) ;
r6 : 'k8' 'k9' 'k10' 'k11' 'k12' | 'k8' 'k9' 'k13' INT | 'k8' 'k9' 'k14' INT ;
r7 : 'k1' 'k2'* 'k3' {{a0}} ( 'k5' 'k4' ) ex | 'k1' 'k2'* 'k6' INT 'k7' ;
ex : ex 'k0' ex | INT ;
ID : [a-z] [a-z0-9]* ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
