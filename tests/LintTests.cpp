//===- tests/LintTests.cpp - Grammar lint engine ---------------------------===//
//
// One fixture grammar per diagnostic class, asserting the exact diagnostic
// id, source location, and witness; a clean twin per class proving no false
// positive; witness validation by replaying the sequence through the
// decision's DFA (and one full parse demonstrating the earlier alternative
// wins); suppression directives; deterministic ordering; SARIF 2.1.0
// structural checks (parsed with the repo's own JSON grammar) and a golden
// snapshot; and a zero-warning sweep over grammars/ + examples/grammars/.
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"
#include "lint/SarifWriter.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace llstar;
using namespace llstar::test;

namespace {

std::string readRepoFile(const std::string &RelPath) {
  std::string Path = std::string(LLSTAR_SOURCE_DIR) + "/" + RelPath;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Lints grammar text with default options (suppressions honored).
LintResult lint(const std::string &Text, LintOptions Opts = LintOptions()) {
  auto AG = analyzeOrFail(Text);
  if (!AG)
    return LintResult();
  return LintEngine(std::move(Opts)).run(*AG, Text);
}

/// All findings with the given id.
std::vector<LintDiagnostic> findingsOf(const LintResult &R,
                                       const std::string &Id) {
  std::vector<LintDiagnostic> Out;
  for (const LintDiagnostic &D : R.Diagnostics)
    if (D.Id == Id)
      Out.push_back(D);
  return Out;
}

//===----------------------------------------------------------------------===//
// shadowed-alt
//===----------------------------------------------------------------------===//

const char *ShadowedAltGrammar = "grammar t;\n"
                                 "s : w | 'a' ;\n"
                                 "w : 'a' ;\n";

TEST(Lint, ShadowedAltExactDiagnostic) {
  LintResult R = lint(ShadowedAltGrammar);
  auto Hits = findingsOf(R, "shadowed-alt");
  ASSERT_EQ(Hits.size(), 1u);
  const LintDiagnostic &D = Hits[0];
  EXPECT_EQ(D.Severity, DiagSeverity::Warning);
  // Points at the shadowed alternative `'a'` (line 2, column of the
  // literal), not the rule header — the span threaded through AtnState.
  EXPECT_EQ(D.Loc, SourceLocation(2, 8));
  EXPECT_EQ(D.RuleName, "s");
  EXPECT_EQ(D.Alt, 2);
  ASSERT_EQ(D.Witness.size(), 1u);
  EXPECT_EQ(D.Witness[0], "'a'");
  EXPECT_NE(D.Message.find("alternative 2 of rule 's' can never be matched"),
            std::string::npos)
      << D.Message;
}

TEST(Lint, ShadowedAltWitnessSelectsEarlierAlternative) {
  auto AG = analyzeOrFail(ShadowedAltGrammar);
  ASSERT_TRUE(AG);
  LintResult R = LintEngine().run(*AG, ShadowedAltGrammar);
  auto Hits = findingsOf(R, "shadowed-alt");
  ASSERT_EQ(Hits.size(), 1u);
  const LintDiagnostic &D = Hits[0];

  // Replaying the witness through the decision's DFA predicts an earlier
  // alternative than the shadowed one.
  int32_t Predicted = AG->dfa(D.Decision).simulate(D.WitnessTypes);
  EXPECT_EQ(Predicted, 1);
  EXPECT_LT(Predicted, D.Alt);

  // And an actual parse of the witness sentence goes through rule w
  // (alternative 1), demonstrating alternative 2 is dead.
  std::string Tree = parseToString(*AG, "a", "s");
  EXPECT_NE(Tree.find("(w"), std::string::npos) << Tree;
}

TEST(Lint, ShadowedAltCleanTwin) {
  // Same shape, distinct lookahead: nothing shadowed.
  LintResult R = lint("grammar t;\n"
                      "s : w | 'b' ;\n"
                      "w : 'a' ;\n");
  EXPECT_TRUE(findingsOf(R, "shadowed-alt").empty());
  EXPECT_TRUE(R.empty());
}

//===----------------------------------------------------------------------===//
// ambiguity
//===----------------------------------------------------------------------===//

const char *AmbiguityGrammar = "grammar t;\n"
                               "s : a | b ;\n"
                               "a : A | C ;\n"
                               "b : A | B ;\n"
                               "A : 'x' ;\n"
                               "B : 'y' ;\n"
                               "C : 'z' ;\n";

TEST(Lint, AmbiguityExactDiagnostic) {
  LintResult R = lint(AmbiguityGrammar);
  auto Hits = findingsOf(R, "ambiguity");
  ASSERT_EQ(Hits.size(), 1u);
  const LintDiagnostic &D = Hits[0];
  EXPECT_EQ(D.Loc, SourceLocation(2, 0));
  EXPECT_EQ(D.RuleName, "s");
  EXPECT_EQ(D.Alt, 1); // resolved winner
  ASSERT_EQ(D.Witness.size(), 1u);
  EXPECT_EQ(D.Witness[0], "A");
  EXPECT_NE(D.Message.find("alternatives {1, 2} of rule 's'"),
            std::string::npos)
      << D.Message;
  // The losing alternative is NOT dead (b also matches B), so this is not
  // a shadowed-alt.
  EXPECT_TRUE(findingsOf(R, "shadowed-alt").empty());
}

TEST(Lint, AmbiguityWitnessSelectsWinner) {
  auto AG = analyzeOrFail(AmbiguityGrammar);
  ASSERT_TRUE(AG);
  LintResult R = LintEngine().run(*AG, AmbiguityGrammar);
  auto Hits = findingsOf(R, "ambiguity");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(AG->dfa(Hits[0].Decision).simulate(Hits[0].WitnessTypes),
            Hits[0].Alt);
}

//===----------------------------------------------------------------------===//
// dead-rule / dead-token
//===----------------------------------------------------------------------===//

const char *DeadSymbolsGrammar = "grammar t;\n"
                                 "s : A ;\n"
                                 "dead : B ;\n"
                                 "A : 'a' ;\n"
                                 "B : 'b' ;\n"
                                 "C : 'c' ;\n";

TEST(Lint, DeadRuleExactDiagnostic) {
  LintResult R = lint(DeadSymbolsGrammar);
  auto Hits = findingsOf(R, "dead-rule");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(3, 0));
  EXPECT_EQ(Hits[0].RuleName, "dead");
  EXPECT_NE(Hits[0].Message.find("unreachable from start rule 's'"),
            std::string::npos);
}

TEST(Lint, DeadTokenExactDiagnostic) {
  LintResult R = lint(DeadSymbolsGrammar);
  auto Hits = findingsOf(R, "dead-token");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(6, 0));
  EXPECT_NE(Hits[0].Message.find("token C is never used"), std::string::npos);
  // B is used (by the dead rule): one diagnostic for the dead rule, not a
  // second one for its token.
  for (const LintDiagnostic &D : Hits)
    EXPECT_EQ(D.Message.find("token B"), std::string::npos);
}

TEST(Lint, DeadSymbolsCleanTwin) {
  LintResult R = lint("grammar t;\n"
                      "s : A dead ;\n"
                      "dead : B | C ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n"
                      "C : 'c' ;\n");
  EXPECT_TRUE(findingsOf(R, "dead-rule").empty());
  EXPECT_TRUE(findingsOf(R, "dead-token").empty());
  EXPECT_TRUE(R.empty());
}

//===----------------------------------------------------------------------===//
// shadowed-token
//===----------------------------------------------------------------------===//

TEST(Lint, ShadowedTokenExactDiagnostic) {
  LintResult R = lint("grammar t;\n"
                      "s : K | I | J ;\n"
                      "K : 'if' ;\n"
                      "I : [a-z]+ ;\n"
                      "J : 'if' ;\n");
  auto Hits = findingsOf(R, "shadowed-token");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(5, 0));
  EXPECT_NE(
      Hits[0].Message.find("lexer rule J can never match: 'if' is matched "
                           "by rule K"),
      std::string::npos)
      << Hits[0].Message;
}

TEST(Lint, ShadowedTokenCleanTwin) {
  // Keyword before the identifier rule: maximal munch + order is fine, and
  // the identifier rule is not a pure literal so it is never flagged.
  LintResult R = lint("grammar t;\n"
                      "s : K | I ;\n"
                      "K : 'if' ;\n"
                      "I : [a-z]+ ;\n");
  EXPECT_TRUE(findingsOf(R, "shadowed-token").empty());
  EXPECT_TRUE(R.empty());
}

//===----------------------------------------------------------------------===//
// pred-never-hoisted
//===----------------------------------------------------------------------===//

TEST(Lint, PredNeverHoistedExactDiagnostic) {
  LintResult R = lint("grammar t;\n"
                      "s : {p}? A | B ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n");
  auto Hits = findingsOf(R, "pred-never-hoisted");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 4));
  EXPECT_NE(Hits[0].Message.find("'{p}?' never gates a prediction"),
            std::string::npos)
      << Hits[0].Message;
}

TEST(Lint, PredHoistedCleanTwin) {
  // The same predicate where prediction needs it: both alternatives start
  // with A, so analysis hoists {p}? onto a DFA predicate edge.
  LintResult R = lint("grammar t;\n"
                      "s : {p}? A | A ;\n"
                      "A : 'a' ;\n");
  EXPECT_TRUE(findingsOf(R, "pred-never-hoisted").empty());
}

//===----------------------------------------------------------------------===//
// synpred-redundant
//===----------------------------------------------------------------------===//

TEST(Lint, SynPredRedundantExactDiagnostic) {
  LintResult R = lint("grammar t;\n"
                      "s : (A)=> A | B ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n");
  auto Hits = findingsOf(R, "synpred-redundant");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 4));
  EXPECT_NE(Hits[0].Message.find("redundant"), std::string::npos);
}

TEST(Lint, SynPredNeededCleanTwin) {
  // Recursion in both alternatives: full LL(*) aborts and the fallback
  // leans on the user's syntactic predicate, so it is NOT redundant.
  LintResult R = lint("grammar t;\n"
                      "s : (r A)=> r A | r B ;\n"
                      "r : C r | D ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n"
                      "C : 'c' ;\n"
                      "D : 'd' ;\n");
  EXPECT_TRUE(findingsOf(R, "synpred-redundant").empty());
  // ... and the same grammar is the non-ll-regular fixture.
  auto Hits = findingsOf(R, "non-ll-regular");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 0));
  EXPECT_EQ(Hits[0].RuleName, "s");
  EXPECT_NE(Hits[0].Message.find("likely non-LL-regular"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// non-ll-regular / left-recursion
//===----------------------------------------------------------------------===//

TEST(Lint, NonLLRegularExactDiagnostic) {
  LintResult R = lint("grammar t;\n"
                      "s : A s A | A s B | C ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n"
                      "C : 'c' ;\n");
  auto Hits = findingsOf(R, "non-ll-regular");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 0));
  EXPECT_EQ(Hits[0].Decision, 0);
  EXPECT_NE(Hits[0].Message.find("recursion in more than one alternative"),
            std::string::npos);
}

TEST(Lint, LeftRecursionNoteNotNonLLRegular) {
  LintResult R = lint("grammar t;\n"
                      "e : e '+' e | N ;\n"
                      "N : [0-9]+ ;\n");
  auto Hits = findingsOf(R, "left-recursion");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Severity, DiagSeverity::Note);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 0));
  EXPECT_EQ(Hits[0].RuleName, "e");
  // The precedence rewrite's internal fallback is by design, not noise.
  EXPECT_TRUE(findingsOf(R, "non-ll-regular").empty());
  EXPECT_EQ(R.warningCount(), 0);
}

TEST(Lint, NonRecursiveGrammarHasNoStructureFindings) {
  LintResult R = lint("grammar t;\n"
                      "s : A B ;\n"
                      "A : 'a' ;\n"
                      "B : 'b' ;\n");
  EXPECT_TRUE(findingsOf(R, "left-recursion").empty());
  EXPECT_TRUE(findingsOf(R, "non-ll-regular").empty());
  EXPECT_TRUE(R.empty());
}

//===----------------------------------------------------------------------===//
// lookahead-budget / lookahead-profile
//===----------------------------------------------------------------------===//

const char *DeepLookaheadGrammar = "grammar t;\n"
                                   "s : A A A B | A A A C ;\n"
                                   "A : 'a' ;\n"
                                   "B : 'b' ;\n"
                                   "C : 'c' ;\n";

TEST(Lint, LookaheadBudgetFlagsDeepDecision) {
  LintOptions Opts;
  Opts.LookaheadBudget = 2;
  LintResult R = lint(DeepLookaheadGrammar, Opts);
  auto Hits = findingsOf(R, "lookahead-budget");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_EQ(Hits[0].Loc, SourceLocation(2, 0));
  EXPECT_NE(Hits[0].Message.find("needs k=4 lookahead, over budget 2"),
            std::string::npos)
      << Hits[0].Message;

  // A budget of 4 is satisfied: no finding.
  Opts.LookaheadBudget = 4;
  EXPECT_TRUE(findingsOf(lint(DeepLookaheadGrammar, Opts), "lookahead-budget")
                  .empty());
}

TEST(Lint, DfaStateBudgetFlagsLargeDfa) {
  LintOptions Opts;
  Opts.DfaStateBudget = 2;
  LintResult R = lint(DeepLookaheadGrammar, Opts);
  auto Hits = findingsOf(R, "lookahead-budget");
  ASSERT_EQ(Hits.size(), 1u);
  EXPECT_NE(Hits[0].Message.find("states, over budget 2"), std::string::npos);
}

TEST(Lint, ProfileNotesEveryDecision) {
  auto AG = analyzeOrFail(DeepLookaheadGrammar);
  ASSERT_TRUE(AG);
  LintOptions Opts;
  Opts.Profile = true;
  LintResult R = LintEngine(Opts).run(*AG, DeepLookaheadGrammar);
  auto Hits = findingsOf(R, "lookahead-profile");
  ASSERT_EQ(Hits.size(), AG->numDecisions());
  EXPECT_EQ(Hits[0].Severity, DiagSeverity::Note);
  EXPECT_NE(Hits[0].Message.find("LL(4)"), std::string::npos)
      << Hits[0].Message;
  // Off by default.
  EXPECT_TRUE(
      findingsOf(LintEngine().run(*AG, ""), "lookahead-profile").empty());
}

//===----------------------------------------------------------------------===//
// Suppression & ordering
//===----------------------------------------------------------------------===//

TEST(Lint, SuppressionNextLineAndCounts) {
  LintResult R = lint("grammar t;\n"
                      "// llstar-lint-disable shadowed-alt\n"
                      "s : w | 'a' ;\n"
                      "w : 'a' ;\n");
  EXPECT_TRUE(R.Diagnostics.empty());
  EXPECT_EQ(R.NumSuppressed, 1);
}

TEST(Lint, SuppressionLineAndFileForms) {
  // -line on the diagnostic's own line.
  LintResult R1 = lint("grammar t;\n"
                       "s : w | 'a' ; // llstar-lint-disable-line shadowed-alt\n"
                       "w : 'a' ;\n");
  EXPECT_TRUE(R1.Diagnostics.empty());
  EXPECT_EQ(R1.NumSuppressed, 1);

  // -file anywhere, and with no ids it silences everything.
  LintResult R2 = lint("grammar t;\n"
                       "s : w | 'a' ;\n"
                       "w : 'a' ;\n"
                       "// llstar-lint-disable-file\n");
  EXPECT_TRUE(R2.Diagnostics.empty());
  EXPECT_EQ(R2.NumSuppressed, 1);

  // A directive for a different id suppresses nothing.
  LintResult R3 = lint("grammar t;\n"
                       "// llstar-lint-disable dead-rule\n"
                       "s : w | 'a' ;\n"
                       "w : 'a' ;\n");
  EXPECT_EQ(R3.Diagnostics.size(), 1u);
  EXPECT_EQ(R3.NumSuppressed, 0);
}

TEST(Lint, DisabledIdsFromOptions) {
  LintOptions Opts;
  Opts.Disabled.insert("shadowed-alt");
  LintResult R = lint(ShadowedAltGrammar, Opts);
  EXPECT_TRUE(R.Diagnostics.empty());
  EXPECT_EQ(R.NumSuppressed, 1);
}

TEST(Lint, DiagnosticsSortedByLocationThenSeverity) {
  // dead + shadowed findings across several lines arrive sorted.
  LintResult R = lint("grammar t;\n"
                      "s : w | 'a' ;\n"
                      "w : 'a' ;\n"
                      "dead : B ;\n"
                      "B : 'b' ;\n"
                      "C : 'c' ;\n");
  ASSERT_GE(R.Diagnostics.size(), 3u);
  for (size_t I = 1; I < R.Diagnostics.size(); ++I) {
    const SourceLocation &Prev = R.Diagnostics[I - 1].Loc;
    const SourceLocation &Cur = R.Diagnostics[I].Loc;
    EXPECT_TRUE(Prev < Cur || Prev == Cur)
        << "out of order at " << I << ": " << R.Diagnostics[I - 1].str()
        << " vs " << R.Diagnostics[I].str();
  }
}

TEST(Lint, RunIsDeterministic) {
  auto AG = analyzeOrFail(DeadSymbolsGrammar);
  ASSERT_TRUE(AG);
  LintOptions Opts;
  Opts.Profile = true;
  LintEngine Engine(Opts);
  std::string A = renderLintText(Engine.run(*AG, DeadSymbolsGrammar), "g.g");
  std::string B = renderLintText(Engine.run(*AG, DeadSymbolsGrammar), "g.g");
  EXPECT_EQ(A, B);
  EXPECT_FALSE(A.empty());
}

// Satellite: DiagnosticEngine::str() renders sorted by (line, col,
// severity) regardless of emission order; diagnostics() keeps emission
// order for callers that care.
TEST(Lint, DiagnosticEngineSortedRendering) {
  DiagnosticEngine Diags;
  Diags.warning(SourceLocation(5, 2), "later");
  Diags.error(SourceLocation(1, 0), "first");
  Diags.note(SourceLocation(5, 2), "tied note");
  Diags.error(SourceLocation(5, 2), "tied error");
  EXPECT_EQ(Diags.str(), "error: 1:0: first\n"
                         "error: 5:2: tied error\n"
                         "warning: 5:2: later\n"
                         "note: 5:2: tied note\n");
  // Emission order preserved in diagnostics().
  EXPECT_EQ(Diags.diagnostics().front().Message, "later");
}

// Satellite: analysis ambiguity warnings now carry the decision's source
// location instead of no location.
TEST(Lint, AnalysisAmbiguityWarningHasLocation) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(AmbiguityGrammar, Diags);
  ASSERT_TRUE(AG);
  bool Found = false;
  for (const Diagnostic &D : Diags.diagnostics())
    if (D.Message.find("ambiguous") != std::string::npos) {
      Found = true;
      EXPECT_TRUE(D.Loc.isValid()) << D.str();
      EXPECT_EQ(D.Loc.Line, 2u);
    }
  EXPECT_TRUE(Found);
}

//===----------------------------------------------------------------------===//
// Witness validation across the corpus
//===----------------------------------------------------------------------===//

TEST(Lint, CorpusWitnessesReplayCorrectly) {
  namespace fs = std::filesystem;
  // The fuzz corpus plus the witnessed fixtures from this file: every
  // witness a lint run emits must replay through its decision's DFA to the
  // advertised outcome.
  std::vector<std::pair<std::string, std::string>> Inputs = {
      {"<shadowed-alt fixture>", ShadowedAltGrammar},
      {"<ambiguity fixture>", AmbiguityGrammar},
      {"<non-ll-regular fixture>", "grammar t;\n"
                                   "s : A s A | A s B | C ;\n"
                                   "A : 'a' ;\n"
                                   "B : 'b' ;\n"
                                   "C : 'c' ;\n"}};
  fs::path Corpus = fs::path(LLSTAR_SOURCE_DIR) / "tests" / "corpus";
  for (const auto &Entry : fs::directory_iterator(Corpus)) {
    if (Entry.path().extension() != ".g")
      continue;
    std::ifstream In(Entry.path());
    std::ostringstream Buffer;
    Buffer << In.rdbuf();
    Inputs.emplace_back(Entry.path().string(), Buffer.str());
  }
  ASSERT_GT(Inputs.size(), 3u);

  int Witnesses = 0;
  for (const auto &[Name, Text] : Inputs) {
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Text, Diags);
    ASSERT_TRUE(AG && !Diags.hasErrors()) << Name;
    LintResult R = LintEngine().run(*AG, Text);
    for (const LintDiagnostic &D : R.Diagnostics) {
      if (D.WitnessTypes.empty() || D.Decision < 0)
        continue;
      ++Witnesses;
      int32_t Predicted = AG->dfa(D.Decision).simulate(D.WitnessTypes);
      if (D.Id == "shadowed-alt") {
        // The witness demonstrates an earlier alternative stealing the
        // shadowed one's input.
        EXPECT_GE(Predicted, 1) << Name << ": " << D.str();
        EXPECT_LT(Predicted, D.Alt) << Name << ": " << D.str();
      } else if (D.Id == "ambiguity" && Predicted > 0) {
        EXPECT_EQ(Predicted, D.Alt) << Name << ": " << D.str();
      }
    }
  }
  EXPECT_GE(Witnesses, 3);
}

//===----------------------------------------------------------------------===//
// Zero false positives on shipped grammars
//===----------------------------------------------------------------------===//

TEST(Lint, ShippedGrammarsLintClean) {
  namespace fs = std::filesystem;
  for (const char *Dir : {"grammars", "examples/grammars"}) {
    fs::path Root = fs::path(LLSTAR_SOURCE_DIR) / Dir;
    for (const auto &Entry : fs::directory_iterator(Root)) {
      if (Entry.path().extension() != ".g")
        continue;
      std::ifstream In(Entry.path());
      std::ostringstream Buffer;
      Buffer << In.rdbuf();
      DiagnosticEngine Diags;
      auto AG = analyzeGrammarText(Buffer.str(), Diags);
      ASSERT_TRUE(AG && !Diags.hasErrors()) << Entry.path();
      LintResult R = LintEngine().run(*AG, Buffer.str());
      EXPECT_EQ(R.warningCount(), 0)
          << Entry.path() << ":\n"
          << renderLintText(R, Entry.path().filename().string());
      EXPECT_EQ(R.errorCount(), 0) << Entry.path();
    }
  }
}

//===----------------------------------------------------------------------===//
// Renderers: text, JSON, SARIF
//===----------------------------------------------------------------------===//

TEST(Lint, TextRenderingIncludesWitness) {
  LintResult R = lint(ShadowedAltGrammar);
  std::string Text = renderLintText(R, "shadow.g");
  EXPECT_NE(Text.find("shadow.g:2:8: warning: "), std::string::npos) << Text;
  EXPECT_NE(Text.find("[shadowed-alt]"), std::string::npos);
  EXPECT_NE(Text.find("    witness: 'a'\n"), std::string::npos);
}

TEST(Lint, JsonRenderingEscapesAndStructure) {
  LintResult R = lint(ShadowedAltGrammar);
  std::string Json = renderLintJson(R, "dir/shadow.g");
  EXPECT_NE(Json.find("\"file\": \"dir/shadow.g\""), std::string::npos);
  EXPECT_NE(Json.find("\"id\": \"shadowed-alt\""), std::string::npos);
  EXPECT_NE(Json.find("\"line\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"witness\": [\"'a'\"]"), std::string::npos) << Json;

  EXPECT_EQ(jsonQuote("a\"b\\c\nd\te"), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(jsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Lint, SarifIsValidJsonPerOwnJsonGrammar) {
  // Parse the SARIF output with the repo's own JSON grammar: a structural
  // well-formedness check with zero external dependencies.
  std::string JsonGrammar = readRepoFile("grammars/json.g");
  auto JsonAG = analyzeOrFail(JsonGrammar);
  ASSERT_TRUE(JsonAG);

  for (const char *Fixture :
       {ShadowedAltGrammar, AmbiguityGrammar, DeadSymbolsGrammar}) {
    LintResult R = lint(Fixture);
    std::string Sarif = renderSarif(R, "fixture.g");
    EXPECT_TRUE(parses(*JsonAG, Sarif, "json"))
        << "SARIF output is not well-formed JSON:\n"
        << Sarif;
  }
  // An empty result is still a complete, parseable SARIF log.
  LintResult Empty;
  EXPECT_TRUE(parses(*JsonAG, renderSarif(Empty, "clean.g"), "json"));
}

TEST(Lint, SarifSchemaRequiredFields) {
  LintResult R = lint(ShadowedAltGrammar);
  std::string S = renderSarif(R, "shadow.g");
  // SARIF 2.1.0 schema-required properties of a minimal log with results.
  for (const char *Needle :
       {"\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\"",
        "\"version\": \"2.1.0\"", "\"runs\": [", "\"tool\": {",
        "\"driver\": {", "\"name\": \"llstar\"", "\"rules\": [",
        "\"results\": [", "\"ruleId\": \"shadowed-alt\"", "\"ruleIndex\": 0",
        "\"level\": \"warning\"", "\"message\": {\"text\": ",
        "\"locations\": [{\"physicalLocation\": ",
        "\"artifactLocation\": {\"uri\": \"shadow.g\"}",
        "\"region\": {\"startLine\": 2, \"startColumn\": 9}",
        "\"witness\": [\"'a'\"]"})
    EXPECT_NE(S.find(Needle), std::string::npos)
        << "missing " << Needle << " in:\n"
        << S;
  // Every catalog rule appears in the driver's rules array.
  for (const LintRuleInfo &Info : lintRuleCatalog())
    EXPECT_NE(S.find("{\"id\": \"" + std::string(Info.Id) + "\""),
              std::string::npos)
        << Info.Id;
}

TEST(Lint, SarifGoldenSnapshot) {
  // Exact golden for a minimal clean grammar: pins the SARIF envelope
  // byte-for-byte so accidental format drift is visible in review.
  LintResult R = lint("grammar t;\ns : A ;\nA : 'a' ;\n");
  ASSERT_TRUE(R.empty());
  std::string S = renderSarif(R, "clean.g");
  std::ostringstream Expected;
  Expected
      << "{\n"
         "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
         "  \"version\": \"2.1.0\",\n"
         "  \"runs\": [\n"
         "    {\n"
         "      \"tool\": {\n"
         "        \"driver\": {\n"
         "          \"name\": \"llstar\",\n"
         "          \"informationUri\": "
         "\"https://www.antlr.org/papers/LL-star-PLDI11.pdf\",\n"
         "          \"version\": \"0.4.0\",\n"
         "          \"rules\": [";
  const auto &Catalog = lintRuleCatalog();
  for (size_t I = 0; I < Catalog.size(); ++I) {
    Expected << (I ? ",\n            " : "\n            ");
    const char *Level = Catalog[I].DefaultSeverity == DiagSeverity::Note
                            ? "note"
                            : "warning";
    Expected << "{\"id\": " << jsonQuote(Catalog[I].Id)
             << ", \"shortDescription\": {\"text\": "
             << jsonQuote(Catalog[I].Summary)
             << "}, \"defaultConfiguration\": {\"level\": " << jsonQuote(Level)
             << "}}";
  }
  Expected << "\n          ]\n"
              "        }\n"
              "      },\n"
              "      \"columnKind\": \"utf16CodeUnits\",\n"
              "      \"results\": []\n"
              "    }\n"
              "  ]\n"
              "}\n";
  EXPECT_EQ(S, Expected.str());
}

//===----------------------------------------------------------------------===//
// DFA witness helpers
//===----------------------------------------------------------------------===//

TEST(Lint, DfaShortestPathAndSimulate) {
  auto AG = analyzeOrFail(DeepLookaheadGrammar);
  ASSERT_TRUE(AG);
  const LookaheadDfa &Dfa = AG->dfa(0);
  // Both alternatives are predictable...
  std::set<int32_t> Alts = Dfa.reachableAlts();
  EXPECT_TRUE(Alts.count(1));
  EXPECT_TRUE(Alts.count(2));
  // ...and the shortest path to alternative 2 is A A A C, which simulate()
  // replays to the same prediction.
  std::vector<TokenType> Path;
  ASSERT_TRUE(Dfa.shortestPathToAlt(2, Path));
  EXPECT_EQ(Path.size(), 4u);
  EXPECT_EQ(Dfa.simulate(Path), 2);
  // No path to a nonexistent alternative.
  EXPECT_FALSE(Dfa.shortestPathToAlt(7, Path));
}

} // namespace
