//===- tests/RecoveryTests.cpp - Error-recovering runtime -----------------===//
//
// Coverage for the src/recover/ subsystem and its runtime integration:
// the analysis-time follow/recovery tables, the pluggable repair strategy
// (single-token deletion, single-token insertion, sync-and-return panic
// mode), error leaves with exact source spans in both heap and arena
// trees, termination on pathological input, repair counters, the bundle
// `recover` payload section, and golden recovered-tree snapshots for every
// shipped grammar.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "codegen/Serializer.h"
#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "recover/RecoverySets.h"
#include "runtime/Arena.h"
#include "runtime/ArenaParseTree.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace llstar;
using namespace llstar::test;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Both tree modes of one recovering parse, plus everything the tests
/// assert on. Heap and arena parses run back to back on copies of the same
/// token stream; they must agree exactly.
struct RecoveredParse {
  bool Ok = false;
  size_t Errors = 0;
  size_t ErrorNodes = 0;
  std::string HeapTree;
  std::string ArenaTree;
  std::string DiagText;
  ParserStats Stats;
};

RecoveredParse parseRecovering(const AnalyzedGrammar &AG,
                               const std::string &Input,
                               const std::string &Start = "") {
  RecoveredParse R;
  {
    TokenStream Stream = lexOrFail(AG, Input);
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.Recover = true;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    auto Tree = P.parse(Start);
    R.Ok = P.ok();
    R.Errors = Diags.errorCount();
    R.DiagText = Diags.str();
    R.Stats = P.stats();
    if (Tree) {
      R.HeapTree = Tree->str(AG.grammar());
      R.ErrorNodes = Tree->numErrorNodes();
    }
  }
  {
    TokenStream Stream = lexOrFail(AG, Input);
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts;
    Opts.Recover = true;
    Opts.TreeArena = &TreeArena;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    P.parse(Start);
    EXPECT_EQ(P.ok(), R.Ok);
    EXPECT_EQ(Diags.errorCount(), R.Errors);
    if (P.arenaTree()) {
      R.ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
      EXPECT_EQ(P.arenaTree()->numErrorNodes(), R.ErrorNodes);
    }
  }
  return R;
}

std::string readFileOrEmpty(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

//===----------------------------------------------------------------------===//
// RecoverySets tables
//===----------------------------------------------------------------------===//

TEST(RecoverySets, FollowAtRuleStartIsFirstOfTheRule) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a C ;
a : A B? ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  const RecoverySets &RS = AG->recovery();
  EXPECT_EQ(RS.numStates(), AG->atn().numStates());

  // follow(ruleStart) is the rule's FIRST set (within-rule terminals).
  int32_t AStart = AG->atn().ruleStart(AG->grammar().findRule("a"));
  EXPECT_TRUE(RS.follow(AStart).contains(tokType(*AG, "A")));
  EXPECT_FALSE(RS.follow(AStart).contains(tokType(*AG, "C")));
  // 'a' must consume an A: its suffix is not nullable.
  EXPECT_FALSE(RS.reachesEnd(AStart));
}

TEST(RecoverySets, RuleStopsReachEndWithEmptyFollow) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a A ;
a : B | ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  const RecoverySets &RS = AG->recovery();
  for (size_t R = 0; R < AG->grammar().numRules(); ++R) {
    int32_t Stop = AG->atn().ruleStop(int32_t(R));
    EXPECT_TRUE(RS.reachesEnd(Stop));
    EXPECT_TRUE(RS.follow(Stop).empty());
  }
  // Rule a has an empty alternative, so its start reaches the end too.
  int32_t AStart = AG->atn().ruleStart(AG->grammar().findRule("a"));
  EXPECT_TRUE(RS.reachesEnd(AStart));
}

TEST(RecoverySets, ComputeIsDeterministicAndRoundTripsTables) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : (a | b)* EOF ;
a : A ('+' A)* ;
b : B c? ;
c : C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  auto First = RecoverySets::compute(AG->atn());
  auto Second = RecoverySets::compute(AG->atn());
  ASSERT_TRUE(First && Second);
  EXPECT_TRUE(*First == *Second);
  EXPECT_TRUE(*First == AG->recovery());

  std::vector<IntervalSet> Follow;
  std::vector<uint8_t> Ends;
  for (size_t S = 0; S < First->numStates(); ++S) {
    Follow.push_back(First->follow(int32_t(S)));
    Ends.push_back(First->reachesEnd(int32_t(S)) ? 1 : 0);
  }
  auto Rebuilt = RecoverySets::fromTables(std::move(Follow), std::move(Ends));
  EXPECT_TRUE(*Rebuilt == *First);
}

//===----------------------------------------------------------------------===//
// Repairs
//===----------------------------------------------------------------------===//

TEST(Recovery, SingleTokenDeletionKeepsSpanAndCounts) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A B C ;
A:'a'; B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  RecoveredParse R = parseRecovering(*AG, "adbc", "a");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Errors, 1u) << R.DiagText;
  EXPECT_EQ(R.ErrorNodes, 1u);
  EXPECT_EQ(R.HeapTree, "(a a (error d) b c)");
  EXPECT_EQ(R.ArenaTree, R.HeapTree);
  EXPECT_EQ(R.Stats.TokensDeleted, 1);
  EXPECT_EQ(R.Stats.TokensInserted, 0);
  EXPECT_TRUE(R.DiagText.find("deleted 'd' to recover") != std::string::npos)
      << R.DiagText;
}

TEST(Recovery, SingleTokenInsertionConjuresTheMissingToken) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : 'if' '(' ID ')' ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  RecoveredParse R = parseRecovering(*AG, "if x )", "s");
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Errors, 1u) << R.DiagText;
  EXPECT_EQ(R.ErrorNodes, 1u);
  EXPECT_EQ(R.HeapTree, "(s if (error <missing '('>) x ))");
  EXPECT_EQ(R.ArenaTree, R.HeapTree);
  EXPECT_EQ(R.Stats.TokensInserted, 1);
  EXPECT_EQ(R.Stats.TokensDeleted, 0);
}

TEST(Recovery, PanicModeSyncsToTheFollowSet) {
  auto AG = analyzeOrFail(R"(
grammar T;
prog : stmt* EOF ;
stmt : ID '=' INT ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  // The junk run "1 2 3" can be neither deleted (the next token is also
  // junk) nor bridged by one insertion; panic mode must swallow the run
  // and pick up at the next statement.
  RecoveredParse R = parseRecovering(*AG, "a = 1 ; 1 2 3 b = 2 ;", "prog");
  EXPECT_FALSE(R.Ok);
  EXPECT_GE(R.Errors, 1u) << R.DiagText;
  EXPECT_GE(R.ErrorNodes, 1u);
  EXPECT_EQ(R.ArenaTree, R.HeapTree);
  // Both intact statements survive in the partial tree.
  EXPECT_TRUE(R.HeapTree.find("(stmt a = 1 ;)") != std::string::npos)
      << R.HeapTree;
  EXPECT_TRUE(R.HeapTree.find("(stmt b = 2 ;)") != std::string::npos)
      << R.HeapTree;
  EXPECT_GE(R.Stats.PanicSyncs, 1);
}

TEST(Recovery, EveryErrorLeavesAtLeastOneErrorNode) {
  auto AG = analyzeOrFail(R"(
grammar T;
prog : stmt* EOF ;
stmt : ID '=' INT ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  const char *Broken[] = {
      "a = ;",             // missing INT
      "a = 1",             // missing ';'
      "= 1 ;",             // leading junk
      "a = 1 ; ; b = 2 ;", // stray ';'
      "a b c d e",         // no structure at all
  };
  for (const char *Input : Broken) {
    RecoveredParse R = parseRecovering(*AG, Input, "prog");
    EXPECT_FALSE(R.Ok) << Input;
    EXPECT_GE(R.Errors, 1u) << Input;
    EXPECT_GE(R.ErrorNodes, 1u) << Input << "\n" << R.HeapTree;
    EXPECT_EQ(R.ArenaTree, R.HeapTree) << Input;
  }
}

TEST(Recovery, TerminatesOnPathologicalInput) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : A B ;
A:'a'; B:'b'; D:'d';
)");
  ASSERT_TRUE(AG);
  // 2k junk tokens after a valid prefix: recovery must chew through all
  // of them and stop at EOF, never loop.
  std::string Input = "a";
  for (int I = 0; I < 2000; ++I)
    Input += "d";
  RecoveredParse R = parseRecovering(*AG, Input, "s");
  EXPECT_FALSE(R.Ok);
  EXPECT_GE(R.Errors, 1u);
  EXPECT_GE(R.ErrorNodes, 1u);
  EXPECT_EQ(R.ArenaTree, R.HeapTree);
}

TEST(Recovery, InsertionCapForcesProgress) {
  // Every repair point prefers insertion here (the next expected token is
  // always viable); the per-consume insertion cap must still force the
  // parse forward instead of conjuring tokens forever.
  auto AG = analyzeOrFail(R"(
grammar T;
s : (A B)* EOF ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  RecoveredParse R = parseRecovering(*AG, "aaaa", "s");
  EXPECT_FALSE(R.Ok);
  EXPECT_GE(R.Errors, 1u);
  EXPECT_EQ(R.ArenaTree, R.HeapTree);
}

TEST(Recovery, NotesStaySilentDuringSpeculation) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : p '.' | p '!' ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  RecoveredParse R = parseRecovering(*AG, "((x))!", "s");
  // Valid input: speculation fails internally, but recovery must not
  // fabricate repairs (or diagnostics) inside failed speculation.
  EXPECT_TRUE(R.Ok) << R.DiagText;
  EXPECT_EQ(R.Errors, 0u);
  EXPECT_EQ(R.ErrorNodes, 0u);
  EXPECT_EQ(R.Stats.TokensDeleted + R.Stats.TokensInserted, 0);
}

//===----------------------------------------------------------------------===//
// Repair counters
//===----------------------------------------------------------------------===//

TEST(Recovery, StatsCountersMergeAndSerialize) {
  ParserStats A, B;
  A.TokensDeleted = 2;
  A.TokensInserted = 1;
  A.PanicSyncs = 3;
  A.SyntaxErrors = 4;
  B.TokensDeleted = 1;
  B.PanicSyncs = 2;
  A.merge(B);
  EXPECT_EQ(A.TokensDeleted, 3);
  EXPECT_EQ(A.TokensInserted, 1);
  EXPECT_EQ(A.PanicSyncs, 5);

  std::string Json = A.json();
  EXPECT_TRUE(Json.find("\"tokensDeleted\":3") != std::string::npos) << Json;
  EXPECT_TRUE(Json.find("\"tokensInserted\":1") != std::string::npos) << Json;
  EXPECT_TRUE(Json.find("\"panicSyncs\":5") != std::string::npos) << Json;
  EXPECT_TRUE(Json.find("\"syntaxErrors\":4") != std::string::npos) << Json;
}

//===----------------------------------------------------------------------===//
// Bundle serialization of recovery tables
//===----------------------------------------------------------------------===//

const char *BundleGrammar = R"(
grammar T;
prog : stmt* EOF ;
stmt : ID '=' INT ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \n]+ -> skip ;
)";

TEST(RecoveryBundle, RoundTripPreservesRecoveryTables) {
  auto AG = analyzeOrFail(BundleGrammar);
  ASSERT_TRUE(AG);
  std::string Payload = serializeGrammar(*AG);
  ASSERT_TRUE(Payload.find("\nrecover ") != std::string::npos);

  DiagnosticEngine Diags;
  auto CG = deserializeGrammar(Payload, Diags);
  ASSERT_TRUE(CG) << Diags.str();
  EXPECT_TRUE(CG->AG->recovery() == AG->recovery());

  // And the deserialized grammar recovers identically. Compiled grammars
  // tokenize through their precompiled lexer tables, not a lexer spec.
  RecoveredParse Orig = parseRecovering(*AG, "a = 1 ; b 2 ;", "prog");
  DiagnosticEngine LexDiags;
  TokenStream Stream(CG->tokenize("a = 1 ; b 2 ;", LexDiags));
  ASSERT_FALSE(LexDiags.hasErrors()) << LexDiags.str();
  DiagnosticEngine ParseDiags;
  ParserOptions Opts;
  Opts.Recover = true;
  LLStarParser P(*CG->AG, Stream, nullptr, ParseDiags, Opts);
  auto Tree = P.parse("prog");
  ASSERT_TRUE(Tree);
  EXPECT_EQ(Tree->str(CG->AG->grammar()), Orig.HeapTree);
  EXPECT_EQ(ParseDiags.errorCount(), Orig.Errors);
}

TEST(RecoveryBundle, RejectsMangledRecoverSections) {
  auto AG = analyzeOrFail(BundleGrammar);
  ASSERT_TRUE(AG);
  std::string Payload = serializeGrammar(*AG);
  size_t Rec = Payload.find("\nrecover ");
  ASSERT_NE(Rec, std::string::npos);
  size_t CountAt = Rec + std::string("\nrecover ").size();

  // State-count mismatch: the table no longer covers the ATN.
  {
    std::string Mangled = Payload;
    Mangled.insert(CountAt, "9");
    DiagnosticEngine Diags;
    EXPECT_EQ(deserializeGrammar(Mangled, Diags), nullptr);
    EXPECT_TRUE(Diags.hasErrors());
  }
  // Out-of-range follow interval: token types beyond the vocabulary.
  {
    std::string Mangled = Payload;
    size_t Eol = Mangled.find('\n', CountAt);
    ASSERT_NE(Eol, std::string::npos);
    // First per-state line: "<reachesEnd> <numIntervals> ..." — rewrite it
    // to declare one wildly out-of-range interval.
    size_t LineEnd = Mangled.find('\n', Eol + 1);
    ASSERT_NE(LineEnd, std::string::npos);
    Mangled.replace(Eol + 1, LineEnd - Eol - 1, "0 1 999999 999999");
    DiagnosticEngine Diags;
    EXPECT_EQ(deserializeGrammar(Mangled, Diags), nullptr);
    EXPECT_TRUE(Diags.hasErrors());
  }
  // Non-boolean reachesEnd flag.
  {
    std::string Mangled = Payload;
    size_t Eol = Mangled.find('\n', CountAt);
    ASSERT_NE(Eol, std::string::npos);
    size_t LineEnd = Mangled.find('\n', Eol + 1);
    ASSERT_NE(LineEnd, std::string::npos);
    Mangled.replace(Eol + 1, LineEnd - Eol - 1, "7 0");
    DiagnosticEngine Diags;
    EXPECT_EQ(deserializeGrammar(Mangled, Diags), nullptr);
    EXPECT_TRUE(Diags.hasErrors());
  }
}

//===----------------------------------------------------------------------===//
// SentenceGen (decision-guided minimal sentences)
//===----------------------------------------------------------------------===//

TEST(SentenceGen, SeedsCoverDecisionsAndParseCleanly) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : stmt* EOF ;
stmt : 'if' ID 'then' stmt
     | ID '=' INT ';'
     | '{' stmt* '}'
     ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  fuzz::SentenceGen Gen(*AG);
  auto Seeds = Gen.seeds();
  ASSERT_FALSE(Seeds.empty());
  for (const auto &Seed : Seeds) {
    std::string Input = fuzz::SentenceSampler::render(Seed);
    EXPECT_TRUE(parses(*AG, Input, "s")) << "seed does not parse: " << Input;
  }
}

TEST(SentenceGen, SentenceForReachesTheRequestedAlternative) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a EOF ;
a : 'x' B | 'y' C ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  fuzz::SentenceGen Gen(*AG);
  int32_t D = decisionOf(*AG, "a");
  ASSERT_GE(D, 0);
  std::vector<std::string> S1, S2;
  ASSERT_TRUE(Gen.sentenceFor(D, 1, S1));
  ASSERT_TRUE(Gen.sentenceFor(D, 2, S2));
  EXPECT_EQ(fuzz::SentenceSampler::render(S1), "x b");
  EXPECT_EQ(fuzz::SentenceSampler::render(S2), "y c");
}

TEST(SentenceGen, ShippedGrammarSeedsParseCleanly) {
  std::string Text =
      readFileOrEmpty(std::string(LLSTAR_SOURCE_DIR) + "/grammars/json.g");
  ASSERT_FALSE(Text.empty());
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  fuzz::SentenceGen Gen(*AG);
  auto Seeds = Gen.seeds();
  ASSERT_FALSE(Seeds.empty());
  for (const auto &Seed : Seeds)
    EXPECT_TRUE(parses(*AG, fuzz::SentenceSampler::render(Seed)))
        << fuzz::SentenceSampler::render(Seed);
}

//===----------------------------------------------------------------------===//
// Golden recovered-tree snapshots (shipped grammars)
//===----------------------------------------------------------------------===//

struct GoldenCase {
  const char *Grammar; ///< grammars/<name>.g
  const char *Input;   ///< 1-3 injected errors
};

// Regenerate with: LLSTAR_REGEN_GOLDEN=1 ./llstar_tests \
//   --gtest_filter='Recovery.GoldenTreesForShippedGrammars'
const GoldenCase GoldenCases[] = {
    {"csv", "a,b\n\"x\" y,c\n"},              // junk after a quoted field
    {"dot", "digraph g { a -> -> b ; x = ; }"}, // doubled edge op, no value
    {"ini", "[a]\nx 1\n[b\ny = 2\n"},         // missing '=', unclosed section
    {"json", "{\"a\": 1 \"b\": 2,}"},         // missing comma, trailing comma
    {"lambda", "lambda x (x"},                // missing '.', unclosed paren
    {"lua", "x = = 1"},                       // doubled assignment op
    {"sexpr", "(a b)) (c"},                   // stray ')', unclosed '('
};

TEST(Recovery, GoldenTreesForShippedGrammars) {
  bool Regen = std::getenv("LLSTAR_REGEN_GOLDEN") != nullptr;
  for (const GoldenCase &C : GoldenCases) {
    SCOPED_TRACE(C.Grammar);
    std::string Text = readFileOrEmpty(std::string(LLSTAR_SOURCE_DIR) +
                                       "/grammars/" + C.Grammar + ".g");
    ASSERT_FALSE(Text.empty());
    auto AG = analyzeOrFail(Text);
    ASSERT_TRUE(AG);
    RecoveredParse R = parseRecovering(*AG, C.Input);
    EXPECT_FALSE(R.Ok) << C.Input;
    EXPECT_GE(R.Errors, 1u) << R.DiagText;
    EXPECT_GE(R.ErrorNodes, 1u) << R.HeapTree;
    EXPECT_EQ(R.ArenaTree, R.HeapTree);

    std::string GoldenPath = std::string(LLSTAR_SOURCE_DIR) +
                             "/tests/golden/recovery/" + C.Grammar + ".txt";
    std::string Expected = readFileOrEmpty(GoldenPath);
    std::string Actual = std::string(C.Input) + "\n" + R.HeapTree + "\n";
    if (Regen) {
      std::ofstream Out(GoldenPath, std::ios::binary);
      ASSERT_TRUE(Out.good()) << GoldenPath;
      Out << Actual;
      continue;
    }
    EXPECT_EQ(Actual, Expected)
        << "golden mismatch for " << C.Grammar
        << "; regenerate with LLSTAR_REGEN_GOLDEN=1 after reviewing";
  }
}

} // namespace
