//===- tests/TestHelpers.h - Shared test utilities --------------*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_TESTS_TESTHELPERS_H
#define LLSTAR_TESTS_TESTHELPERS_H

#include "analysis/AnalyzedGrammar.h"
#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "runtime/LLStarParser.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace llstar {
namespace test {

/// Parses and analyzes grammar text; fails the test on any error.
inline std::unique_ptr<AnalyzedGrammar>
analyzeOrFail(const std::string &Text) {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Text, Diags);
  if (!AG || Diags.hasErrors()) {
    ADD_FAILURE() << "grammar failed to analyze:\n" << Diags.str();
    return nullptr;
  }
  return AG;
}

/// Like analyzeOrFail but also hands back the diagnostics (for warning
/// checks).
inline std::unique_ptr<AnalyzedGrammar>
analyzeWithDiags(const std::string &Text, DiagnosticEngine &Diags) {
  return analyzeGrammarText(Text, Diags);
}

/// Tokenizes \p Input with the grammar's lexer; fails the test on errors.
inline TokenStream lexOrFail(const AnalyzedGrammar &AG,
                             const std::string &Input) {
  DiagnosticEngine Diags;
  Lexer L(AG.grammar().lexerSpec(), Diags);
  std::vector<Token> Tokens = L.tokenize(Input, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  return TokenStream(std::move(Tokens));
}

/// Token type for a symbolic name ("ID"), a quoted literal ("'int'"), or
/// "EOF".
inline TokenType tokType(const AnalyzedGrammar &AG, const std::string &Name) {
  if (Name == "EOF")
    return TokenEof;
  TokenType T = AG.grammar().vocabulary().lookup(Name);
  EXPECT_NE(T, TokenInvalid) << "unknown token " << Name;
  return T;
}

/// Decision number at the start of \p RuleName (-1 if the rule has no
/// rule-level decision).
inline int32_t decisionOf(const AnalyzedGrammar &AG,
                          const std::string &RuleName) {
  int32_t Rule = AG.grammar().findRule(RuleName);
  EXPECT_GE(Rule, 0) << "unknown rule " << RuleName;
  return AG.atn().state(AG.atn().ruleStart(Rule)).Decision;
}

/// Walks the decision's DFA along \p TokenNames using terminal edges only.
/// Returns the predicted alternative on accept, 0 if the walk got stuck on
/// a non-accept state (e.g. one with only predicate edges), or -1 if an
/// edge was missing mid-way.
inline int32_t predictSeq(const AnalyzedGrammar &AG, int32_t Decision,
                          const std::vector<std::string> &TokenNames) {
  const LookaheadDfa &Dfa = AG.dfa(Decision);
  int32_t S = 0;
  size_t I = 0;
  while (true) {
    const DfaState &St = Dfa.state(S);
    if (St.isAccept())
      return St.PredictedAlt;
    if (I >= TokenNames.size())
      return 0;
    int32_t Next = St.edgeOn(tokType(AG, TokenNames[I]));
    if (Next < 0)
      return St.PredEdges.empty() ? -1 : 0;
    S = Next;
    ++I;
  }
}

/// Parses \p Input from \p StartRule; returns the tree string, or
/// "ERROR: <diags>" when the parse failed.
inline std::string parseToString(const AnalyzedGrammar &AG,
                                 const std::string &Input,
                                 const std::string &StartRule = "",
                                 SemanticEnv *Env = nullptr) {
  TokenStream Stream = lexOrFail(AG, Input);
  DiagnosticEngine Diags;
  LLStarParser P(AG, Stream, Env, Diags);
  auto Tree = P.parse(StartRule);
  if (!P.ok())
    return "ERROR: " + Diags.str();
  return Tree->str(AG.grammar());
}

/// True if the parse succeeds with no syntax errors.
inline bool parses(const AnalyzedGrammar &AG, const std::string &Input,
                   const std::string &StartRule = "",
                   SemanticEnv *Env = nullptr) {
  TokenStream Stream = lexOrFail(AG, Input);
  DiagnosticEngine Diags;
  LLStarParser P(AG, Stream, Env, Diags);
  P.parse(StartRule);
  return P.ok();
}

} // namespace test
} // namespace llstar

#endif // LLSTAR_TESTS_TESTHELPERS_H
