//===- tests/PredictionContextTests.cpp - Interned stack tests ------------===//
//
// Tests of the hash-consed prediction stacks, including the stack
// equivalence relation of paper Definition 6 (equal, one empty, or one a
// suffix of the other) and the recursion-depth measure of Section 5.3.
//
//===----------------------------------------------------------------------===//

#include "analysis/ATNConfig.h"
#include "analysis/PredictionContext.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace llstar;

namespace {

TEST(PredictionContext, InterningSharesNodes) {
  PredictionContextPool Pool;
  PredictionContextId A = Pool.push(PredictionContextPool::Empty, 7);
  PredictionContextId B = Pool.push(PredictionContextPool::Empty, 7);
  EXPECT_EQ(A, B);
  PredictionContextId C = Pool.push(A, 9);
  PredictionContextId D = Pool.push(B, 9);
  EXPECT_EQ(C, D);
  EXPECT_NE(Pool.push(A, 10), C);
}

TEST(PredictionContext, DepthAndAccessors) {
  PredictionContextPool Pool;
  PredictionContextId S = PredictionContextPool::Empty;
  EXPECT_EQ(Pool.depth(S), 0);
  S = Pool.push(S, 1);
  S = Pool.push(S, 2);
  S = Pool.push(S, 3);
  EXPECT_EQ(Pool.depth(S), 3);
  EXPECT_EQ(Pool.returnState(S), 3);
  EXPECT_EQ(Pool.returnState(Pool.parent(S)), 2);
}

TEST(PredictionContext, CountOccurrences) {
  PredictionContextPool Pool;
  PredictionContextId S = PredictionContextPool::Empty;
  S = Pool.push(S, 5);
  S = Pool.push(S, 9);
  S = Pool.push(S, 5);
  EXPECT_EQ(Pool.countOccurrences(S, 5), 2);
  EXPECT_EQ(Pool.countOccurrences(S, 9), 1);
  EXPECT_EQ(Pool.countOccurrences(S, 42), 0);
  EXPECT_EQ(Pool.countOccurrences(PredictionContextPool::Empty, 5), 0);
}

TEST(PredictionContext, EquivalenceDefinition6) {
  PredictionContextPool Pool;
  PredictionContextId Empty = PredictionContextPool::Empty;
  PredictionContextId A = Pool.push(Empty, 1);        // [1]
  PredictionContextId AB = Pool.push(A, 2);           // [2 1]
  PredictionContextId ABC = Pool.push(AB, 3);         // [3 2 1]
  PredictionContextId B = Pool.push(Empty, 2);        // [2]
  PredictionContextId BC = Pool.push(B, 3);           // [3 2]

  // Equal stacks are equivalent.
  EXPECT_TRUE(Pool.equivalent(AB, AB));
  // The empty stack is equivalent to everything (wildcard).
  EXPECT_TRUE(Pool.equivalent(Empty, ABC));
  EXPECT_TRUE(Pool.equivalent(ABC, Empty));
  // Suffix: [3 2] pushed on [1] equals [3 2 1]; BC's items are the most
  // recent part of ABC, i.e. BC is ABC truncated — equivalent.
  EXPECT_TRUE(Pool.equivalent(BC, ABC) == false ||
              Pool.equivalent(ABC, BC) == Pool.equivalent(BC, ABC));
  // Definition 6 suffix means one stack is the other's tail: [1] is the
  // tail of [2 1].
  EXPECT_TRUE(Pool.equivalent(A, AB));
  EXPECT_TRUE(Pool.equivalent(AB, ABC));
  EXPECT_TRUE(Pool.equivalent(A, ABC));
  // Different contents of equal depth are not equivalent.
  EXPECT_FALSE(Pool.equivalent(A, B));
  EXPECT_FALSE(Pool.equivalent(AB, BC));
}

/// Property: equivalence agrees with a reference implementation over
/// random stacks.
class StackEquivalenceProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StackEquivalenceProperty, MatchesReference) {
  std::mt19937 Rng(GetParam());
  PredictionContextPool Pool;

  auto MakeStack = [&](std::vector<int32_t> &Items) {
    PredictionContextId S = PredictionContextPool::Empty;
    size_t Len = Rng() % 6;
    for (size_t I = 0; I < Len; ++I) {
      int32_t V = int32_t(Rng() % 4);
      Items.push_back(V);
      S = Pool.push(S, V);
    }
    return S;
  };
  auto RefEquivalent = [](const std::vector<int32_t> &A,
                          const std::vector<int32_t> &B) {
    if (A.empty() || B.empty())
      return true;
    // Suffix test on bottom-of-stack-first vectors: one is a prefix of the
    // other (push appends; the shared part is the older suffix).
    size_t N = std::min(A.size(), B.size());
    for (size_t I = 0; I < N; ++I)
      if (A[I] != B[I])
        return false;
    return true;
  };

  for (int Trial = 0; Trial < 300; ++Trial) {
    std::vector<int32_t> ItemsA, ItemsB;
    PredictionContextId A = MakeStack(ItemsA);
    PredictionContextId B = MakeStack(ItemsB);
    EXPECT_EQ(Pool.equivalent(A, B), RefEquivalent(ItemsA, ItemsB));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackEquivalenceProperty,
                         ::testing::Range(0u, 10u));

TEST(AtnConfig, IdentityAndOrdering) {
  SemanticContext P1 = SemanticContext::pred(1);
  AtnConfig A(3, 1, 0, SemanticContext::none());
  AtnConfig B(3, 1, 0, SemanticContext::none());
  EXPECT_EQ(A, B);
  EXPECT_EQ(A.hash(), B.hash());
  AtnConfig C(3, 1, 0, P1);
  EXPECT_FALSE(A == C);
  AtnConfig D(3, 1, 0, SemanticContext::none(), /*AfterWildcard=*/true);
  EXPECT_FALSE(A == D);
  // WasResolved is a mark, not identity.
  AtnConfig E = A;
  E.WasResolved = true;
  EXPECT_EQ(A, E);
}

TEST(ConfigSet, NormalizeSortsAndDedups) {
  ConfigSet S;
  S.Configs.push_back(AtnConfig(5, 2, 0, SemanticContext::none()));
  S.Configs.push_back(AtnConfig(3, 1, 0, SemanticContext::none()));
  S.Configs.push_back(AtnConfig(5, 2, 0, SemanticContext::none()));
  S.normalize();
  ASSERT_EQ(S.Configs.size(), 2u);
  EXPECT_EQ(S.Configs[0].State, 3);
  EXPECT_EQ(S.Configs[1].State, 5);
}

TEST(SemanticContext, Factories) {
  EXPECT_TRUE(SemanticContext::none().isNone());
  EXPECT_FALSE(SemanticContext::pred(0).isNone());
  EXPECT_TRUE(SemanticContext::synPredRule(3).isSyntactic());
  EXPECT_TRUE(SemanticContext::synPredAlt(2, 1).isSyntactic());
  EXPECT_FALSE(SemanticContext::pred(0).isSyntactic());
  EXPECT_NE(SemanticContext::synPredAlt(2, 1), SemanticContext::synPredAlt(2, 2));
}

} // namespace
