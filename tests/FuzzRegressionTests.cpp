//===- tests/FuzzRegressionTests.cpp - Fuzz corpus conformance ------------===//
//
// Replays the checked-in fuzz corpus (tests/corpus/*.g) through the full
// differential oracle: analysis determinism, serializer round-trip, and
// LL(*)-vs-packrat agreement on sampled sentences and mutants. The corpus
// pins grammars that exercised interesting decision shapes (LL(k>1)
// prefixes, cyclic star-prefix DFAs, predicates, left recursion) so engine
// regressions surface in tier-1 ctest rather than only in long fuzz runs.
//
// Corpus files are regenerated with:
//   llstar-fuzz --emit-corpus tests/corpus 24 --seed 2026 --max-rules 8
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::fuzz;

namespace {

std::filesystem::path corpusDir() {
  return std::filesystem::path(LLSTAR_SOURCE_DIR) / "tests" / "corpus";
}

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(corpusDir()))
    if (Entry.path().extension() == ".g")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

// Deterministic per-file sampler seed, independent of directory order.
uint64_t fileSeed(const std::filesystem::path &Path) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a
  for (char C : Path.filename().string())
    H = (H ^ uint64_t(uint8_t(C))) * 0x100000001b3ull;
  return H;
}

TEST(FuzzCorpus, HasAtLeastTwentyGrammars) {
  EXPECT_GE(corpusFiles().size(), 20u);
}

class FuzzCorpusConformance
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(FuzzCorpusConformance, OraclesAgree) {
  const std::filesystem::path &Path = GetParam();
  DifferentialOracle Oracle(slurp(Path));
  ASSERT_TRUE(Oracle.valid())
      << Path.filename() << " no longer analyzes:\n" << Oracle.grammarError();

  OracleVerdict G = Oracle.checkGrammar();
  EXPECT_FALSE(G.Failed) << Path.filename() << ": " << G.Check << "\n"
                         << G.Detail;

  SentenceSampler Sampler(Oracle.analyzed().grammar(), fileSeed(Path));
  for (int S = 0; S < 8; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    OracleVerdict V = Oracle.checkSentence(SentenceSampler::render(Tokens));
    EXPECT_FALSE(V.Failed) << Path.filename() << ": " << V.Check << "\n"
                           << V.Detail;
    EXPECT_TRUE(Oracle.lastAccepted())
        << Path.filename() << ": packrat rejected derived sentence <"
        << SentenceSampler::render(Tokens) << ">";
    for (int M = 0; M < 2; ++M) {
      std::vector<std::string> Mutant = Sampler.mutate(Tokens);
      OracleVerdict MV =
          Oracle.checkSentence(SentenceSampler::render(Mutant));
      EXPECT_FALSE(MV.Failed) << Path.filename() << ": " << MV.Check << "\n"
                              << MV.Detail;
    }
  }
}

std::string corpusTestName(
    const ::testing::TestParamInfo<std::filesystem::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!std::isalnum(uint8_t(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, FuzzCorpusConformance,
                         ::testing::ValuesIn(corpusFiles()),
                         corpusTestName);

} // namespace
