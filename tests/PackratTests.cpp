//===- tests/PackratTests.cpp - PEG/packrat baseline tests ----------------===//

#include "TestHelpers.h"
#include "peg/PackratParser.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

/// Parse + analyze for the LL(*) side but reuse the same Grammar object for
/// the packrat side.
std::unique_ptr<AnalyzedGrammar> prep(const std::string &Text) {
  return analyzeOrFail(Text);
}

bool pegParses(const AnalyzedGrammar &AG, const std::string &Input,
               PackratParser::Options Opts = {},
               PackratStats *OutStats = nullptr) {
  TokenStream Stream = lexOrFail(AG, Input);
  DiagnosticEngine Diags;
  PackratParser P(AG.grammar(), Stream, nullptr, Diags, Opts);
  P.parse();
  if (OutStats)
    *OutStats = P.stats();
  return P.ok();
}

TEST(Packrat, BasicRecognition) {
  auto AG = prep(R"(
grammar T;
s : A B | A C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(pegParses(*AG, "ab"));
  EXPECT_TRUE(pegParses(*AG, "ac"));
  EXPECT_FALSE(pegParses(*AG, "ba"));
}

TEST(Packrat, OrderedChoiceHidesLaterAlternatives) {
  // The paper's PEG hazard: A -> a | ab never uses alternative two.
  auto AG = prep(R"(
grammar T;
s : A | A B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "ab");
  DiagnosticEngine Diags;
  PackratParser P(AG->grammar(), Stream, nullptr, Diags);
  P.parse();
  EXPECT_TRUE(P.ok());
  // Alternative 1 matched; the 'b' is left unconsumed.
  EXPECT_EQ(Stream.index(), 1);
  // LL(*) on the same grammar consumes both tokens (see
  // Runtime.LLStarBeatsPegOrderedChoice).
}

TEST(Packrat, GreedyPossessiveLoops) {
  auto AG = prep(R"(
grammar T;
s : A* A B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  // PEG A* consumes all the a's possessively; the trailing "A B" then
  // cannot match. (LL(*) resolves the loop exit with lookahead instead.)
  EXPECT_FALSE(pegParses(*AG, "aab"));
}

TEST(Packrat, TreeConstruction) {
  auto AG = prep(R"(
grammar T;
s : a b ;
a : A ;
b : B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "ab");
  DiagnosticEngine Diags;
  PackratParser::Options Opts;
  Opts.BuildTree = true;
  PackratParser P(AG->grammar(), Stream, nullptr, Diags, Opts);
  auto Tree = P.parse();
  ASSERT_TRUE(P.ok());
  ASSERT_TRUE(Tree);
  EXPECT_EQ(Tree->str(AG->grammar()), "(s (a a) (b b))");
}

TEST(Packrat, FailedAlternativesRollBackTree) {
  auto AG = prep(R"(
grammar T;
s : a B | a C ;
a : A ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "ac");
  DiagnosticEngine Diags;
  PackratParser::Options Opts;
  Opts.BuildTree = true;
  PackratParser P(AG->grammar(), Stream, nullptr, Diags, Opts);
  auto Tree = P.parse();
  ASSERT_TRUE(P.ok());
  // The failed first alternative must leave no stray children behind.
  EXPECT_EQ(Tree->str(AG->grammar()), "(s (a a) c)");
}

TEST(Packrat, MemoizationCutsRuleInvocations) {
  const char *Text = R"(
grammar T;
s : p '.' | p '!' | p '?' ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
WS : [ \t]+ -> skip ;
)";
  auto AG = prep(Text);
  ASSERT_TRUE(AG);
  std::string Input = "((((((((x))))))))?";

  PackratStats WithMemo, WithoutMemo;
  PackratParser::Options On, Off;
  Off.Memoize = false;
  ASSERT_TRUE(pegParses(*AG, Input, On, &WithMemo));
  ASSERT_TRUE(pegParses(*AG, Input, Off, &WithoutMemo));
  EXPECT_GT(WithMemo.MemoHits, 0);
  EXPECT_LT(WithMemo.RuleInvocations, WithoutMemo.RuleInvocations);
}

TEST(Packrat, SemanticPredicatesConsulted) {
  auto AG = prep(R"(
grammar T;
s : {yes}? A | A A ;
A:'a';
)");
  ASSERT_TRUE(AG);
  for (bool Yes : {true, false}) {
    SemanticEnv Env;
    Env.definePredicate("yes", [&] { return Yes; });
    TokenStream Stream = lexOrFail(*AG, "aa");
    DiagnosticEngine Diags;
    PackratParser P(AG->grammar(), Stream, &Env, Diags);
    P.parse();
    EXPECT_TRUE(P.ok());
    // yes=true: alt1 matches one 'a' (stream at 1). yes=false: alt2
    // matches both.
    EXPECT_EQ(Stream.index(), Yes ? 1 : 2);
  }
}

TEST(Packrat, SyntacticPredicateIsAndPredicate) {
  auto AG = prep(R"(
grammar T;
s : (A B)=> A x | A C ;
x : B ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(pegParses(*AG, "ab"));
  EXPECT_TRUE(pegParses(*AG, "ac"));
}

TEST(Packrat, BudgetGuardStopsRunaways) {
  auto AG = prep(R"(
grammar T;
s : p '.' | p '!' ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
)");
  ASSERT_TRUE(AG);
  PackratParser::Options Opts;
  Opts.Memoize = false;
  Opts.MaxRuleInvocations = 10;
  PackratStats Stats;
  EXPECT_FALSE(pegParses(*AG, "((((((x))))))!", Opts, &Stats));
  EXPECT_LE(Stats.RuleInvocations, 12);
}

// Property: for PEG-safe grammars (no hidden-alternative hazards), LL(*)
// and packrat accept the same strings.
class PackratVsLLStar : public ::testing::TestWithParam<const char *> {};

TEST_P(PackratVsLLStar, AgreeOnAcceptance) {
  auto AG = prep(R"(
grammar T;
s : e EOF ;
e : t ('+' t)* ;
t : f ('*' f)* ;
f : '(' e ')' | NUM ;
NUM : [0-9]+ ;
WS : [ \t]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  std::string Input = GetParam();
  bool Peg = pegParses(*AG, Input);
  bool LL = parses(*AG, Input, "s");
  EXPECT_EQ(Peg, LL) << "input: " << Input;
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, PackratVsLLStar,
    ::testing::Values("1", "1+2", "1+2*3", "(1+2)*3", "((((5))))",
                      "1+", "(1", "1*2*3*4+5", ")", "1 + 2 * (3 + 4)",
                      "((1+2)*(3+4))+5", "1++2", "", "()"));

} // namespace
