//===- tests/IncrementalTests.cpp - Incremental lex + reparse -------------===//
//
// Coverage for src/incremental/: the EditScript JSON parser's typed
// rejections, token offset/line-column agreement between full and
// incremental tokenization on multi-line inputs, and the reuse-soundness
// contract of IncrementalSession — after every edit the session must be
// byte-identical to a from-scratch parse (scratchParse is the oracle) in
// every engine/tree/recovery mode. The adversarial cases aim edits
// directly at the subsystem's invariants: inside tokens, at
// maximal-munch boundaries, just outside the damage window where only
// maxLookaheadReach prevents unsound reuse, and into panic-recovered
// regions. `llstar-fuzz --edit-smoke` extends the same oracle to random
// edit scripts; these tests pin the targeted constructions.
//
//===----------------------------------------------------------------------===//

#include "incremental/IncrementalSession.h"
#include "service/GrammarBundleCache.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::incremental;

namespace {

const char *ExprGrammar = R"(
grammar Expr;
s    : expr EOF ;
expr : term (('+' | '-') term)* ;
term : atom ('*' atom)* ;
atom : INT | ID | '(' expr ')' ;
INT  : [0-9]+ ;
ID   : [a-z] [a-z0-9]* ;
WS   : [ \t\r\n]+ -> skip ;
)";

std::shared_ptr<const GrammarBundle> bundleOrFail(const char *Text) {
  DiagnosticEngine Diags;
  auto Bundle = makeGrammarBundle(Text, Diags);
  EXPECT_TRUE(Bundle) << Diags.str();
  return Bundle;
}

/// All eight engine/tree/recovery combinations.
std::vector<SessionOptions> allModes() {
  std::vector<SessionOptions> Modes;
  for (int I = 0; I < 8; ++I) {
    SessionOptions SO;
    SO.UseCompiled = (I & 1) != 0;
    SO.UseArena = (I & 2) != 0;
    SO.Recover = (I & 4) == 0;
    Modes.push_back(SO);
  }
  return Modes;
}

std::string modeName(const SessionOptions &SO) {
  std::string M = SO.UseCompiled ? "compiled" : "interp";
  M += SO.UseArena ? "+arena" : "+heap";
  M += SO.Recover ? "+recover" : "+strict";
  return M;
}

/// The oracle check: the session's observable state must match a
/// from-scratch parse of the same text in the same mode, byte for byte.
void expectMatchesScratch(const IncrementalSession &S,
                          const SessionOptions &SO, const char *Where) {
  ScratchResult R = scratchParse(S.bundle(), S.text(), SO);
  SCOPED_TRACE(std::string(Where) + " [" + modeName(SO) + "] text <" +
               S.text() + ">");
  EXPECT_EQ(S.ok(), R.ParseOk);
  ASSERT_EQ(S.tokens().size(), R.Tokens.size());
  for (size_t I = 0; I < R.Tokens.size(); ++I) {
    const Token &A = S.tokens()[I];
    const Token &B = R.Tokens[I];
    EXPECT_EQ(A.Type, B.Type) << "token " << I;
    EXPECT_EQ(A.Text, B.Text) << "token " << I;
    EXPECT_EQ(A.Offset, B.Offset) << "token " << I;
    EXPECT_EQ(A.Loc.Line, B.Loc.Line) << "token " << I;
    EXPECT_EQ(A.Loc.Column, B.Loc.Column) << "token " << I;
    EXPECT_EQ(A.Index, B.Index) << "token " << I;
  }
  EXPECT_EQ(S.treeText(), R.TreeText);
  EXPECT_EQ(S.diags().str(), R.DiagText);
}

//===----------------------------------------------------------------------===//
// EditScript: typed rejections
//===----------------------------------------------------------------------===//

TEST(EditScriptTest, ParsesInitialTextSingleEditsAndBatches) {
  EditScriptParseResult R = parseEditScript(R"({
    "initial": "a A\n",
    "edits": [
      {"offset": 1, "oldLen": 0, "newText": "x"},
      [ {"offset": 0, "oldLen": 1, "newText": ""},
        {"offset": 2, "oldLen": 1, "newText": "yz"} ]
    ]
  })");
  ASSERT_TRUE(R) << R.Message;
  EXPECT_EQ(R.Script.Initial, "a A\n");
  ASSERT_EQ(R.Script.Batches.size(), 2u);
  EXPECT_EQ(R.Script.Batches[0].size(), 1u); // single edit = batch of one
  EXPECT_EQ(R.Script.Batches[1].size(), 2u);
  EXPECT_EQ(R.Script.Batches[1][1].NewText, "yz");
}

TEST(EditScriptTest, MalformedJsonIsBadJson) {
  for (const char *Bad :
       {"", "{", "[1]", "{\"edits\": [", "{\"edits\": []} trailing"}) {
    EditScriptParseResult R = parseEditScript(Bad);
    EXPECT_EQ(R.Error, EditScriptError::BadJson) << Bad << ": " << R.Message;
  }
}

TEST(EditScriptTest, MissingFieldsAreMissingField) {
  // No "edits" key at all, and an edit lacking each required field.
  for (const char *Bad :
       {"{}", "{} trailing", R"({"edits": [{"oldLen": 0, "newText": "x"}]})",
        R"({"edits": [{"offset": 0, "newText": "x"}]})",
        R"({"edits": [{"offset": 0, "oldLen": 0}]})"}) {
    EditScriptParseResult R = parseEditScript(Bad);
    EXPECT_EQ(R.Error, EditScriptError::MissingField)
        << Bad << ": " << R.Message;
  }
}

TEST(EditScriptTest, MistypedFieldsAreBadFieldType) {
  for (const char *Bad :
       {R"({"edits": [{"offset": "0", "oldLen": 0, "newText": "x"}]})",
        R"({"edits": [{"offset": 1.5, "oldLen": 0, "newText": "x"}]})",
        R"({"edits": [{"offset": 0, "oldLen": 0, "newText": 3}]})",
        R"({"edits": 7})", R"({"initial": 1, "edits": []})",
        "{\"edits\": [}"}) {
    EditScriptParseResult R = parseEditScript(Bad);
    EXPECT_EQ(R.Error, EditScriptError::BadFieldType)
        << Bad << ": " << R.Message;
  }
}

TEST(EditScriptTest, NegativeValuesAreNegativeValue) {
  for (const char *Bad :
       {R"({"edits": [{"offset": -1, "oldLen": 0, "newText": ""}]})",
        R"({"edits": [{"offset": 0, "oldLen": -2, "newText": ""}]})"}) {
    EditScriptParseResult R = parseEditScript(Bad);
    EXPECT_EQ(R.Error, EditScriptError::NegativeValue)
        << Bad << ": " << R.Message;
  }
}

TEST(EditScriptTest, OverlappingBatchSpansAreOverlap) {
  EditScriptParseResult R = parseEditScript(
      R"({"edits": [[{"offset": 0, "oldLen": 3, "newText": ""},
                     {"offset": 2, "oldLen": 1, "newText": "x"}]]})");
  EXPECT_EQ(R.Error, EditScriptError::Overlap) << R.Message;
}

TEST(EditScriptTest, NonMonotonicBatchOffsetsAreNonMonotonic) {
  EditScriptParseResult R = parseEditScript(
      R"({"edits": [[{"offset": 5, "oldLen": 0, "newText": "a"},
                     {"offset": 2, "oldLen": 0, "newText": "b"}]]})");
  EXPECT_EQ(R.Error, EditScriptError::NonMonotonic) << R.Message;
}

TEST(EditScriptTest, OutOfRangeIsCaughtAtApplyTimeAndLeavesSessionIntact) {
  EXPECT_EQ(validateEdit({10, 0, "x"}, 5), EditScriptError::OutOfRange);
  EXPECT_EQ(validateEdit({3, 4, ""}, 5), EditScriptError::OutOfRange);
  EXPECT_EQ(validateEdit({3, 2, ""}, 5), EditScriptError::None);

  auto Bundle = bundleOrFail(ExprGrammar);
  IncrementalSession S(Bundle, SessionOptions());
  ASSERT_TRUE(S.reset("1 + 2").ParseOk);
  std::string Before = S.treeText();
  EditOutcome O = S.applyEdit({99, 0, "x"});
  EXPECT_EQ(O.Error, EditScriptError::OutOfRange);
  EXPECT_EQ(S.text(), "1 + 2");       // session unchanged
  EXPECT_EQ(S.treeText(), Before);
}

//===----------------------------------------------------------------------===//
// Token offsets and line/column on multi-line inputs
//===----------------------------------------------------------------------===//

TEST(IncrementalLexTest, OffsetsAndLineColAgreeWithFullTokenizeAcrossEdits) {
  auto Bundle = bundleOrFail(ExprGrammar);
  SessionOptions SO;
  IncrementalSession S(Bundle, SO);
  ASSERT_TRUE(S.reset("one +\n  two * 3\n+ (four)\n").ParseOk);

  // Every token's byte offset must point at its own text, and line/column
  // must match a 1-based-line, 0-based-column walk of the string.
  auto CheckSelfConsistent = [&] {
    for (const Token &T : S.tokens()) {
      if (T.isEof())
        continue;
      ASSERT_LE(size_t(T.Offset) + T.Text.size(), S.text().size());
      EXPECT_EQ(S.text().substr(size_t(T.Offset), T.Text.size()), T.Text);
      uint32_t Line = 1, Col = 0;
      for (int64_t I = 0; I < T.Offset; ++I) {
        if (S.text()[size_t(I)] == '\n') {
          ++Line;
          Col = 0;
        } else {
          ++Col;
        }
      }
      EXPECT_EQ(T.Loc.Line, Line) << T.Text;
      EXPECT_EQ(T.Loc.Column, Col) << T.Text;
    }
  };
  CheckSelfConsistent();
  expectMatchesScratch(S, SO, "after reset");

  // Edits that shift offsets and line numbers of the retained suffix:
  // insert a line, delete across a newline, append at the end.
  ASSERT_EQ(S.applyEdit({6, 0, "9 *\n"}).Error, EditScriptError::None);
  CheckSelfConsistent();
  expectMatchesScratch(S, SO, "after line insert");
  ASSERT_EQ(S.applyEdit({4, 2, " "}).Error, EditScriptError::None);
  CheckSelfConsistent();
  expectMatchesScratch(S, SO, "after newline delete");
  ASSERT_EQ(S.applyEdit({int64_t(S.text().size()), 0, " * last\n"}).Error,
            EditScriptError::None);
  CheckSelfConsistent();
  expectMatchesScratch(S, SO, "after append");
}

//===----------------------------------------------------------------------===//
// Session equivalence in every mode
//===----------------------------------------------------------------------===//

TEST(IncrementalSessionTest, EditSequenceMatchesScratchInEveryMode) {
  auto Bundle = bundleOrFail(ExprGrammar);
  for (const SessionOptions &SO : allModes()) {
    IncrementalSession S(Bundle, SO);
    S.reset("1 + 2 * (3 + 4) + five");
    expectMatchesScratch(S, SO, "reset");
    struct {
      Edit E;
      const char *Label;
    } Steps[] = {
        {{4, 1, "7"}, "replace a token"},
        {{0, 0, "(9 + 8) * "}, "prefix insert"},
        {{int64_t(std::string("(9 + 8) * 1 + 7").size()), 0, " - 6"},
         "mid insert"},
        {{2, 3, ""}, "delete"},
        {{1, 1, "@"}, "lex-error byte"},
        {{1, 1, " "}, "repair"},
    };
    for (const auto &Step : Steps) {
      ASSERT_EQ(S.applyEdit(Step.E).Error, EditScriptError::None);
      expectMatchesScratch(S, SO, Step.Label);
    }
  }
}

TEST(IncrementalSessionTest, SmallEditsOnLargeInputReuseSubtrees) {
  auto Bundle = bundleOrFail(ExprGrammar);
  std::string Big;
  for (int I = 0; I < 200; ++I)
    Big += (I ? " + (" : "(") + std::to_string(I) + " * " +
           std::to_string(I + 1) + ")";
  for (bool Compiled : {false, true}) {
    SessionOptions SO;
    SO.UseCompiled = Compiled;
    IncrementalSession S(Bundle, SO);
    ASSERT_TRUE(S.reset(Big).ParseOk);
    // A one-byte edit in the middle: almost every paren group is disjoint
    // from the damage window and must be spliced, not reparsed.
    EditOutcome O = S.applyEdit({int64_t(Big.size() / 2), 1, "9"});
    ASSERT_EQ(O.Error, EditScriptError::None);
    EXPECT_GT(O.NodesReused, 100) << modeName(SO);
    EXPECT_LT(O.TokensRelexed, 10) << modeName(SO);
    expectMatchesScratch(S, SO, "small edit on large input");
    EXPECT_EQ(S.stats().NodesReused, O.NodesReused);
  }
}

TEST(IncrementalSessionTest, ApplyBatchSharesOneSnapshot) {
  auto Bundle = bundleOrFail(ExprGrammar);
  SessionOptions SO;
  IncrementalSession S(Bundle, SO);
  ASSERT_TRUE(S.reset("1 + 2 + 3").ParseOk);
  // Offsets address the same snapshot: both edits use pre-batch positions.
  EditOutcome O = S.applyBatch({{0, 1, "11"}, {8, 1, "33"}});
  ASSERT_EQ(O.Error, EditScriptError::None);
  EXPECT_EQ(S.text(), "11 + 2 + 33");
  expectMatchesScratch(S, SO, "after batch");
}

//===----------------------------------------------------------------------===//
// Adversarial reuse
//===----------------------------------------------------------------------===//

TEST(IncrementalSessionTest, EditInsideATokenSplitsIt) {
  auto Bundle = bundleOrFail(ExprGrammar);
  for (const SessionOptions &SO : allModes()) {
    IncrementalSession S(Bundle, SO);
    S.reset("abc + def");
    // " + 1 + " lands inside `def`, splitting it into de / f around new
    // tokens; and inserting inside `abc` extends a token in place.
    ASSERT_EQ(S.applyEdit({8, 0, " + 1 + "}).Error, EditScriptError::None);
    expectMatchesScratch(S, SO, "token split");
    ASSERT_EQ(S.applyEdit({1, 0, "xyz"}).Error, EditScriptError::None);
    expectMatchesScratch(S, SO, "token extend");
  }
}

TEST(IncrementalSessionTest, MaximalMunchWinnerFlipsAtTheDamageBoundary) {
  auto Bundle = bundleOrFail(ExprGrammar);
  SessionOptions SO;
  IncrementalSession S(Bundle, SO);
  // `1 2` is INT INT; deleting the space must re-lex to one INT `12`, and
  // `a1` / `a 1` flip between one ID and ID INT.
  S.reset("1 2 + a 1");
  ASSERT_EQ(S.applyEdit({1, 1, ""}).Error, EditScriptError::None);
  EXPECT_EQ(S.text(), "12 + a 1");
  expectMatchesScratch(S, SO, "INT INT fuses to INT");
  ASSERT_EQ(S.applyEdit({6, 1, ""}).Error, EditScriptError::None);
  EXPECT_EQ(S.text(), "12 + a1");
  expectMatchesScratch(S, SO, "ID INT fuses to ID");
  ASSERT_EQ(S.applyEdit({6, 0, " + "}).Error, EditScriptError::None);
  EXPECT_EQ(S.text(), "12 + a + 1");
  expectMatchesScratch(S, SO, "ID splits back apart");
}

TEST(IncrementalSessionTest, LookaheadReachBlocksReuseJustOutsideTheWindow) {
  // `a` ends after 'x' on input "x z", but predicting its optional ('y')?
  // examined the following token — that overshoot is a's reach. The edit
  // rewrites that token only: a's token span is disjoint from the damage,
  // so span-checking alone would splice the stale (a x) even though a must
  // now consume the new 'y'. Only maxLookaheadReach forbids the reuse.
  auto Bundle = bundleOrFail(R"(
grammar Reach;
s : a b EOF ;
a : 'x' ('y')? ;
b : 'w' | 'z' ;
)");
  for (const SessionOptions &SO : allModes()) {
    IncrementalSession S(Bundle, SO);
    S.reset("x z");
    expectMatchesScratch(S, SO, "reset");
    ASSERT_EQ(S.applyEdit({2, 1, "y w"}).Error, EditScriptError::None);
    EXPECT_EQ(S.text(), "x y w");
    // The oracle equivalence is the soundness proof: the new tree must
    // show a absorbing the 'y', i.e. (a x y), not a spliced stale (a x).
    expectMatchesScratch(S, SO, "edit inside a's lookahead reach");
    if (SO.Recover || S.ok()) {
      EXPECT_NE(S.treeText().find("x y"), std::string::npos) << S.treeText();
    }
  }
}

TEST(IncrementalSessionTest, EditsInPanicRecoveredRegionsStayConsistent) {
  auto Bundle = bundleOrFail(ExprGrammar);
  for (bool Arena : {false, true}) {
    SessionOptions SO;
    SO.Recover = true;
    SO.UseArena = Arena;
    IncrementalSession S(Bundle, SO);
    // `* *` forces panic recovery mid-expression; then edit inside, just
    // before, and just after the recovered region.
    S.reset("1 + * * 2 + 3");
    EXPECT_FALSE(S.ok());
    expectMatchesScratch(S, SO, "broken reset");
    ASSERT_EQ(S.applyEdit({4, 1, "9"}).Error, EditScriptError::None);
    expectMatchesScratch(S, SO, "edit inside recovered region");
    ASSERT_EQ(S.applyEdit({0, 1, "("}).Error, EditScriptError::None);
    expectMatchesScratch(S, SO, "edit before recovered region");
    ASSERT_EQ(S.applyEdit({int64_t(S.text().size()), 0, " +"}).Error,
              EditScriptError::None);
    expectMatchesScratch(S, SO, "edit after recovered region");
    // Repair the input completely: the session must converge back to a
    // clean parse identical to scratch.
    ASSERT_EQ(S.applyEdit({0, int64_t(S.text().size()), "1 + 2 * 3"}).Error,
              EditScriptError::None);
    EXPECT_TRUE(S.ok());
    expectMatchesScratch(S, SO, "repaired");
  }
}

TEST(IncrementalSessionTest, NoReuseBaselineMatchesToo) {
  auto Bundle = bundleOrFail(ExprGrammar);
  SessionOptions SO;
  SO.Reuse = false;
  IncrementalSession S(Bundle, SO);
  S.reset("1 + 2 * (3 + 4)");
  ASSERT_EQ(S.applyEdit({4, 1, "7"}).Error, EditScriptError::None);
  EditOutcome O = S.applyEdit({0, 0, "0 + "});
  ASSERT_EQ(O.Error, EditScriptError::None);
  EXPECT_EQ(O.NodesReused, 0); // baseline never splices
  expectMatchesScratch(S, SO, "no-reuse baseline");
}

} // namespace
