//===- tests/LexerTests.cpp - DFA lexer and token stream tests ------------===//

#include "lexer/Lexer.h"
#include "lexer/TokenStream.h"
#include "lexer/Vocabulary.h"
#include "regex/RegexParser.h"

#include <gtest/gtest.h>

using namespace llstar;

namespace {

regex::RegexNode::Ptr re(const std::string &Pattern) {
  DiagnosticEngine Diags;
  auto Re = regex::parseRegex(Pattern, Diags);
  EXPECT_TRUE(Re) << Diags.str();
  return Re;
}

LexerSpec basicSpec(Vocabulary &V) {
  LexerSpec Spec;
  // Literals first (priority 0) so keywords beat ID on ties.
  Spec.addRule(V.getOrDefine("'int'", true), re("int"), LexerAction::Emit, 0);
  Spec.addRule(V.getOrDefine("ID"), re("[a-zA-Z_][a-zA-Z0-9_]*"),
               LexerAction::Emit, 100);
  Spec.addRule(V.getOrDefine("NUM"), re("[0-9]+"), LexerAction::Emit, 101);
  Spec.addRule(V.getOrDefine("WS"), re("[ \t\n]+"), LexerAction::Skip, 102);
  return Spec;
}

TEST(Lexer, BasicTokenization) {
  Vocabulary V;
  LexerSpec Spec = basicSpec(V);
  DiagnosticEngine Diags;
  Lexer L(Spec, Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();

  std::vector<Token> Tokens = L.tokenize("int foo 42", Diags);
  ASSERT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Tokens.size(), 4u); // int, foo, 42, EOF
  EXPECT_EQ(Tokens[0].Type, V.lookup("'int'"));
  EXPECT_EQ(Tokens[0].Text, "int");
  EXPECT_EQ(Tokens[1].Type, V.lookup("ID"));
  EXPECT_EQ(Tokens[1].Text, "foo");
  EXPECT_EQ(Tokens[2].Type, V.lookup("NUM"));
  EXPECT_TRUE(Tokens[3].isEof());
}

TEST(Lexer, MaximalMunchBeatsKeyword) {
  Vocabulary V;
  LexerSpec Spec = basicSpec(V);
  DiagnosticEngine Diags;
  Lexer L(Spec, Diags);
  // "integer" is longer than "int": ID wins by maximal munch.
  std::vector<Token> Tokens = L.tokenize("integer", Diags);
  ASSERT_EQ(Tokens.size(), 2u);
  EXPECT_EQ(Tokens[0].Type, V.lookup("ID"));
  EXPECT_EQ(Tokens[0].Text, "integer");
}

TEST(Lexer, LineAndColumnTracking) {
  Vocabulary V;
  LexerSpec Spec = basicSpec(V);
  DiagnosticEngine Diags;
  Lexer L(Spec, Diags);
  std::vector<Token> Tokens = L.tokenize("foo\n  bar", Diags);
  ASSERT_EQ(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[0].Loc, SourceLocation(1, 0));
  EXPECT_EQ(Tokens[1].Loc, SourceLocation(2, 2));
}

TEST(Lexer, UnknownCharacterIsReportedAndSkipped) {
  Vocabulary V;
  LexerSpec Spec = basicSpec(V);
  DiagnosticEngine LexDiags;
  Lexer L(Spec, LexDiags);
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = L.tokenize("foo $ bar", Diags);
  EXPECT_TRUE(Diags.hasErrors());
  ASSERT_EQ(Tokens.size(), 3u); // foo, bar, EOF: lexing continued
  EXPECT_EQ(Tokens[1].Text, "bar");
}

TEST(Lexer, EmptyMatchingRuleRejected) {
  Vocabulary V;
  LexerSpec Spec;
  Spec.addRule(V.getOrDefine("BAD"), re("a*"));
  DiagnosticEngine Diags;
  Lexer L(Spec, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.contains("empty string"));
}

TEST(TokenStream, LookaheadAndSeek) {
  std::vector<Token> Tokens;
  for (int I = 0; I < 3; ++I)
    Tokens.push_back(Token(TokenType(I + 1), "t" + std::to_string(I),
                           SourceLocation(1, uint32_t(I))));
  Tokens.push_back(Token(TokenEof, "<EOF>", SourceLocation(1, 3)));
  for (size_t I = 0; I < Tokens.size(); ++I)
    Tokens[I].Index = int64_t(I);
  TokenStream S(std::move(Tokens));

  EXPECT_EQ(S.LA(1), 1);
  EXPECT_EQ(S.LA(2), 2);
  EXPECT_EQ(S.LA(99), TokenEof); // clamped to EOF
  S.consume();
  EXPECT_EQ(S.index(), 1);
  EXPECT_EQ(S.LA(1), 2);
  S.seek(0);
  EXPECT_EQ(S.LA(1), 1);
  // Consuming past EOF stays put.
  for (int I = 0; I < 10; ++I)
    S.consume();
  EXPECT_EQ(S.LA(1), TokenEof);
}

TEST(Vocabulary, NamesAndLiterals) {
  Vocabulary V;
  TokenType Id = V.getOrDefine("ID");
  TokenType Kw = V.getOrDefine("'while'", /*Literal=*/true);
  EXPECT_EQ(V.lookup("ID"), Id);
  EXPECT_EQ(V.lookupLiteral("while"), Kw);
  EXPECT_EQ(V.name(Id), "ID");
  EXPECT_EQ(V.name(Kw), "'while'");
  EXPECT_EQ(V.name(TokenEof), "EOF");
  EXPECT_EQ(V.name(999), "<invalid>");
  EXPECT_TRUE(V.isLiteral(Kw));
  EXPECT_FALSE(V.isLiteral(Id));
  EXPECT_EQ(V.literalText(Kw), "while");
  // Idempotent definition.
  EXPECT_EQ(V.getOrDefine("ID"), Id);
  EXPECT_EQ(V.maxTokenType(), 2);
}

} // namespace

namespace {

TEST(Lexer, HiddenChannelTokensPreserved) {
  Vocabulary V;
  LexerSpec Spec;
  DiagnosticEngine D;
  Spec.addRule(V.getOrDefine("ID"),
               regex::parseRegex("[a-z]+", D), LexerAction::Emit, 0);
  Spec.addRule(V.getOrDefine("COMMENT"),
               regex::parseRegex("#[a-z ]*", D), LexerAction::Hidden, 1);
  Spec.addRule(V.getOrDefine("WS"),
               regex::parseRegex(" +", D), LexerAction::Skip, 2);
  DiagnosticEngine LexDiags;
  Lexer L(Spec, LexDiags);
  ASSERT_FALSE(LexDiags.hasErrors()) << LexDiags.str();

  std::vector<Token> Hidden;
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = L.tokenize("abc #note here", Diags, &Hidden);
  ASSERT_EQ(Tokens.size(), 2u); // abc + EOF: comment not in parse stream
  EXPECT_EQ(Tokens[0].Text, "abc");
  ASSERT_EQ(Hidden.size(), 1u);
  EXPECT_EQ(Hidden[0].Text, "#note here");
  EXPECT_EQ(Hidden[0].Channel, TokenChannel::Hidden);
}

} // namespace
