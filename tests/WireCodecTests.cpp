//===- tests/WireCodecTests.cpp - llstard wire protocol codec -------------===//
//
// Coverage for src/net/WireFormat.h — the pure encode/decode layer of the
// llstard protocol, exercised entirely offline (no sockets): round-trips
// for every message type, record-marking reassembly under adversarial
// fragmentation, size-limit enforcement, and a mangled-frame fuzz sweep in
// the BundleTests idiom (1000 seeded corruptions, every one either decodes
// or fails cleanly — never crashes, never over-allocates). The ASan/UBSan
// CI job runs these with sanitizers on.
//
//===----------------------------------------------------------------------===//

#include "net/WireFormat.h"

#include <gtest/gtest.h>

#include <random>

using namespace llstar;
using namespace llstar::wire;

namespace {

/// Feeds \p Bytes to a fresh reassembler in chunks of \p ChunkSize and
/// collects every complete record.
std::vector<std::string> reassemble(std::string_view Bytes, size_t ChunkSize,
                                    RecordReassembler &Ra) {
  std::vector<std::string> Records;
  for (size_t Off = 0; Off < Bytes.size(); Off += ChunkSize) {
    Ra.feed(Bytes.substr(Off, ChunkSize));
    std::string Record;
    while (Ra.next(Record) == RecordReassembler::Status::Record)
      Records.push_back(std::move(Record));
  }
  return Records;
}

//===----------------------------------------------------------------------===//
// Round-trips
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, ParseArgsRoundTrip) {
  ParseArgs Args;
  Args.BundleHash = 0xDEADBEEFCAFE1234ull;
  Args.DeadlineMs = 1500;
  Args.WantTree = true;
  Args.StartRule = "expr";
  Args.Input = "1 + 2 * (3 - 4)\n";
  std::string Record = encodeParseArgs(7, Args, /*Recover=*/false);

  ByteReader R(Record);
  MessageHeader Hdr;
  ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
  EXPECT_EQ(Hdr.Op, Opcode::Parse);
  EXPECT_EQ(Hdr.RequestId, 7u);
  EXPECT_EQ(Hdr.Version, ProtocolVersion);
  ParseArgs Back;
  ASSERT_TRUE(decodeParseArgs(R, Hdr.Flags, Back));
  EXPECT_EQ(Back.BundleHash, Args.BundleHash);
  EXPECT_EQ(Back.DeadlineMs, Args.DeadlineMs);
  EXPECT_EQ(Back.WantTree, true);
  EXPECT_EQ(Back.StartRule, Args.StartRule);
  EXPECT_EQ(Back.Input, Args.Input);

  // The recover flavor differs only in opcode.
  std::string Rec = encodeParseArgs(7, Args, /*Recover=*/true);
  ByteReader R2(Rec);
  ASSERT_EQ(decodeHeader(R2, Hdr), WireError::None);
  EXPECT_EQ(Hdr.Op, Opcode::ParseRecover);
}

TEST(WireCodecTest, ParseReplyRoundTrip) {
  ParseReply Reply;
  Reply.Status = uint8_t(ParseStatus::Recovered);
  Reply.NumTokens = 1234567;
  Reply.TreeNodes = -1;
  Reply.ParseMillis = 3.14159;
  Reply.TreeText = "(s (expr (error)))";
  Reply.DiagText = "2:5: error: no viable alternative\n";
  Reply.Errors.push_back({2, 2, 5, "no viable alternative"});
  Reply.Errors.push_back({2, 3, 1, "extraneous input"});

  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeReply(encodeParseReply(42, Reply, /*Recover=*/true), Out,
                          Err))
      << Err;
  EXPECT_EQ(Out.Hdr.Op, Opcode::ParseRecoverReply);
  EXPECT_EQ(Out.Hdr.RequestId, 42u);
  EXPECT_EQ(Out.Parse.Status, Reply.Status);
  EXPECT_EQ(Out.Parse.NumTokens, Reply.NumTokens);
  EXPECT_EQ(Out.Parse.TreeNodes, Reply.TreeNodes);
  EXPECT_EQ(Out.Parse.ParseMillis, Reply.ParseMillis);
  EXPECT_EQ(Out.Parse.TreeText, Reply.TreeText);
  EXPECT_EQ(Out.Parse.DiagText, Reply.DiagText);
  ASSERT_EQ(Out.Parse.Errors.size(), 2u);
  EXPECT_EQ(Out.Parse.Errors[0].Line, 2u);
  EXPECT_EQ(Out.Parse.Errors[0].Column, 5u);
  EXPECT_EQ(Out.Parse.Errors[1].Message, "extraneous input");
}

TEST(WireCodecTest, LoadBundleStatsDrainErrorRoundTrips) {
  Message Out;
  std::string Err;

  std::string Bundle = std::string("grammar G;\ns : 'a' EOF ;\n") +
                       std::string(1000, '#'); // binary-ish payload tail
  std::string LoadRecord = encodeLoadBundleArgs(1, Bundle);
  ByteReader R(LoadRecord);
  MessageHeader Hdr;
  ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
  EXPECT_EQ(Hdr.Op, Opcode::LoadBundle);
  std::string BackBytes;
  ASSERT_TRUE(decodeLoadBundleArgs(R, BackBytes));
  EXPECT_EQ(BackBytes, Bundle);

  LoadBundleReply LR;
  LR.Hash = 0x1122334455667788ull;
  LR.Cached = 1;
  LR.Name = "Json";
  ASSERT_TRUE(decodeReply(encodeLoadBundleReply(2, LR), Out, Err)) << Err;
  EXPECT_EQ(Out.Load.Hash, LR.Hash);
  EXPECT_EQ(Out.Load.Cached, 1);
  EXPECT_EQ(Out.Load.Name, "Json");

  std::string StatsRecord = encodeStatsArgs(3, /*IncludeDecisions=*/true);
  ByteReader SR(StatsRecord);
  ASSERT_EQ(decodeHeader(SR, Hdr), WireError::None);
  EXPECT_EQ(Hdr.Op, Opcode::Stats);
  EXPECT_TRUE(Hdr.Flags & FlagIncludeDecisions);
  EXPECT_TRUE(decodeStatsArgs(SR));

  ASSERT_TRUE(decodeReply(encodeStatsReply(4, "{\"ok\":1}"), Out, Err));
  EXPECT_EQ(Out.StatsJson, "{\"ok\":1}");

  ASSERT_TRUE(decodeReply(encodeDrainReply(5), Out, Err));
  EXPECT_EQ(Out.Hdr.Op, Opcode::DrainReply);

  ASSERT_TRUE(decodeReply(
      encodeErrorReply(6, WireError::UnknownBundle, "no bundle 99"), Out,
      Err));
  EXPECT_EQ(Out.Error.Code, WireError::UnknownBundle);
  EXPECT_EQ(Out.Error.Message, "no bundle 99");
  // Forward compatibility: unknown error codes decode, preserved verbatim.
  ASSERT_TRUE(decodeReply(encodeErrorReply(7, WireError(999), "future"), Out,
                          Err));
  EXPECT_EQ(uint16_t(Out.Error.Code), 999);
}

TEST(WireCodecTest, EditArgsRoundTrip) {
  EditArgs Args;
  Args.SessionId = 42;
  Args.Action = EditActionApply;
  Args.Mode = EditModeRecover | EditModeCompiled | EditModeArena;
  Args.BundleHash = 0xABCDEF0123456789ull;
  Args.Offset = 1000;
  Args.OldLen = 3;
  Args.WantTree = true;
  Args.StartRule = "expr";
  Args.NewText = "y + z";
  std::string Record = encodeEditArgs(11, Args);

  ByteReader R(Record);
  MessageHeader Hdr;
  ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
  EXPECT_EQ(Hdr.Op, Opcode::Edit);
  EXPECT_EQ(Hdr.RequestId, 11u);
  EditArgs Back;
  ASSERT_TRUE(decodeEditArgs(R, Hdr.Flags, Back));
  EXPECT_EQ(Back.SessionId, Args.SessionId);
  EXPECT_EQ(Back.Action, Args.Action);
  EXPECT_EQ(Back.Mode, Args.Mode);
  EXPECT_EQ(Back.BundleHash, Args.BundleHash);
  EXPECT_EQ(Back.Offset, Args.Offset);
  EXPECT_EQ(Back.OldLen, Args.OldLen);
  EXPECT_EQ(Back.WantTree, true);
  EXPECT_EQ(Back.StartRule, Args.StartRule);
  EXPECT_EQ(Back.NewText, Args.NewText);

  // Out-of-range action and mode bytes are rejected, not passed through.
  {
    EditArgs Bad = Args;
    Bad.Action = 9;
    std::string BadRecord = encodeEditArgs(12, Bad);
    ByteReader R2(BadRecord);
    ASSERT_EQ(decodeHeader(R2, Hdr), WireError::None);
    EXPECT_FALSE(decodeEditArgs(R2, Hdr.Flags, Back));
  }
  {
    EditArgs Bad = Args;
    Bad.Mode = 0x40;
    std::string BadRecord = encodeEditArgs(13, Bad);
    ByteReader R2(BadRecord);
    ASSERT_EQ(decodeHeader(R2, Hdr), WireError::None);
    EXPECT_FALSE(decodeEditArgs(R2, Hdr.Flags, Back));
  }
}

TEST(WireCodecTest, EditReplyRoundTrip) {
  EditReplyBody Reply;
  Reply.EditError = 7; // OutOfRange
  Reply.Status = uint8_t(ParseStatus::Recovered);
  Reply.NumTokens = 1234;
  Reply.TreeNodes = 567;
  Reply.ErrorLeaves = 2;
  Reply.NodesReused = 400;
  Reply.TokensRelexed = 3;
  Reply.DecisionsReparsed = 29;
  Reply.EditMillis = 0.25;
  Reply.TreeText = "(s (expr 1))";
  Reply.DiagText = "1:0: error: extraneous input\n";

  Message Out;
  std::string Err;
  ASSERT_TRUE(decodeReply(encodeEditReply(21, Reply), Out, Err)) << Err;
  EXPECT_EQ(Out.Hdr.Op, Opcode::EditReply);
  EXPECT_EQ(Out.Hdr.RequestId, 21u);
  EXPECT_EQ(Out.Edit.EditError, Reply.EditError);
  EXPECT_EQ(Out.Edit.Status, Reply.Status);
  EXPECT_EQ(Out.Edit.NumTokens, Reply.NumTokens);
  EXPECT_EQ(Out.Edit.TreeNodes, Reply.TreeNodes);
  EXPECT_EQ(Out.Edit.ErrorLeaves, Reply.ErrorLeaves);
  EXPECT_EQ(Out.Edit.NodesReused, Reply.NodesReused);
  EXPECT_EQ(Out.Edit.TokensRelexed, Reply.TokensRelexed);
  EXPECT_EQ(Out.Edit.DecisionsReparsed, Reply.DecisionsReparsed);
  EXPECT_EQ(Out.Edit.EditMillis, Reply.EditMillis);
  EXPECT_EQ(Out.Edit.TreeText, Reply.TreeText);
  EXPECT_EQ(Out.Edit.DiagText, Reply.DiagText);

  // An EditError outside the EditScriptError range is rejected.
  EditReplyBody Bad = Reply;
  Bad.EditError = 200;
  EXPECT_FALSE(decodeReply(encodeEditReply(22, Bad), Out, Err));
}

//===----------------------------------------------------------------------===//
// Record marking
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, FragmentationIsTransparentAtEveryChunkSize) {
  // A record big enough to need many fragments at MaxFragment=64.
  std::string Record;
  for (int I = 0; I < 1000; ++I)
    Record += char(I * 31);
  std::string Framed;
  frameRecord(Framed, Record, /*MaxFragment=*/64);
  EXPECT_GT(Framed.size(), Record.size() + 4 * (Record.size() / 64));

  for (size_t Chunk : {size_t(1), size_t(3), size_t(64), Framed.size()}) {
    RecordReassembler Ra;
    auto Records = reassemble(Framed, Chunk, Ra);
    ASSERT_EQ(Records.size(), 1u) << "chunk size " << Chunk;
    EXPECT_EQ(Records[0], Record) << "chunk size " << Chunk;
    EXPECT_EQ(Ra.bufferedBytes(), 0u);
  }
}

TEST(WireCodecTest, MultipleRecordsInOneBuffer) {
  std::string Stream;
  frameRecord(Stream, "first", 3); // multi-fragment
  frameRecord(Stream, "");        // empty record = single empty last-fragment
  frameRecord(Stream, "third");
  RecordReassembler Ra;
  auto Records = reassemble(Stream, 7, Ra);
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_EQ(Records[0], "first");
  EXPECT_EQ(Records[1], "");
  EXPECT_EQ(Records[2], "third");
}

TEST(WireCodecTest, ZeroLengthNonFinalFragmentsAreLegal) {
  std::string Stream;
  putU32(Stream, 0);                       // empty non-final fragment
  putU32(Stream, 0);                       // another
  putU32(Stream, 2 | 0x80000000u);         // final fragment "ab"
  Stream += "ab";
  RecordReassembler Ra;
  Ra.feed(Stream);
  std::string Record;
  ASSERT_EQ(Ra.next(Record), RecordReassembler::Status::Record);
  EXPECT_EQ(Record, "ab");
}

TEST(WireCodecTest, OversizedFragmentAndRecordLatchTheErrorState) {
  {
    RecordReassembler Ra(/*MaxRecord=*/1024, /*MaxFragment=*/16);
    std::string Stream;
    putU32(Stream, 17 | 0x80000000u); // one byte over the fragment cap
    Ra.feed(Stream);
    std::string Record;
    EXPECT_EQ(Ra.next(Record), RecordReassembler::Status::Error);
    EXPECT_NE(Ra.error().find("fragment"), std::string::npos);
    // Latched: even well-formed input is refused after a framing error.
    std::string Good;
    frameRecord(Good, "ok");
    Ra.feed(Good);
    EXPECT_EQ(Ra.next(Record), RecordReassembler::Status::Error);
  }
  {
    RecordReassembler Ra(/*MaxRecord=*/32, /*MaxFragment=*/16);
    std::string Stream;
    putU32(Stream, 16); // non-final, 16 bytes
    Stream += std::string(16, 'x');
    putU32(Stream, 16); // non-final, 16 more
    Stream += std::string(16, 'x');
    putU32(Stream, 1 | 0x80000000u); // would push the record past 32
    Stream += "x";
    Ra.feed(Stream);
    std::string Record;
    EXPECT_EQ(Ra.next(Record), RecordReassembler::Status::Error);
    EXPECT_NE(Ra.error().find("record"), std::string::npos);
  }
  {
    // A huge length prefix must fail at the cap check, not allocate.
    RecordReassembler Ra;
    std::string Stream;
    putU32(Stream, 0x7FFFFFFFu);
    Ra.feed(Stream);
    std::string Record;
    EXPECT_EQ(Ra.next(Record), RecordReassembler::Status::Error);
  }
}

TEST(WireCodecTest, ReassemblerCompactsItsConsumedPrefix) {
  // Many small records through one reassembler: the consumed prefix is
  // compacted away instead of growing without bound.
  RecordReassembler Ra;
  std::string Framed;
  frameRecord(Framed, std::string(100, 'r'));
  std::string Record;
  for (int I = 0; I < 1000; ++I) {
    Ra.feed(Framed);
    ASSERT_EQ(Ra.next(Record), RecordReassembler::Status::Record);
    ASSERT_EQ(Ra.bufferedBytes(), 0u);
  }
}

//===----------------------------------------------------------------------===//
// Strictness
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, HeaderValidationOrdersErrorsUsefully) {
  ParseArgs Args;
  Args.Input = "1";
  std::string Good = encodeParseArgs(9, Args, false);
  MessageHeader Hdr;

  {
    std::string Bad = Good;
    Bad[0] = 'X'; // magic
    ByteReader R(Bad);
    EXPECT_EQ(decodeHeader(R, Hdr), WireError::BadMagic);
  }
  {
    std::string Bad = Good;
    Bad[5] = 99; // version — but id must still be recoverable
    ByteReader R(Bad);
    EXPECT_EQ(decodeHeader(R, Hdr), WireError::BadVersion);
    EXPECT_EQ(Hdr.RequestId, 9u);
  }
  {
    std::string Bad = Good;
    Bad[6] = char(0x77); // opcode
    ByteReader R(Bad);
    EXPECT_EQ(decodeHeader(R, Hdr), WireError::BadOpcode);
  }
  {
    ByteReader R(std::string_view(Good.data(), 10)); // truncated header
    EXPECT_EQ(decodeHeader(R, Hdr), WireError::BadMagic);
  }
}

TEST(WireCodecTest, BodyDecodersRejectTruncationAndTrailingBytes) {
  ParseReply Reply;
  Reply.Status = uint8_t(ParseStatus::Ok);
  Reply.TreeText = "(s)";
  std::string Good = encodeParseReply(1, Reply, false);

  // Every strict prefix of the body fails cleanly.
  for (size_t Len = HeaderBytes; Len < Good.size(); ++Len) {
    ByteReader R(std::string_view(Good.data(), Len));
    MessageHeader Hdr;
    ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
    ParseReply Back;
    EXPECT_FALSE(decodeParseReply(R, Back)) << "prefix length " << Len;
  }
  // Trailing garbage fails too (decoders require full consumption).
  {
    std::string Padded = Good + "!";
    ByteReader R(Padded);
    MessageHeader Hdr;
    ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
    ParseReply Back;
    EXPECT_FALSE(decodeParseReply(R, Back));
  }
  // Out-of-range enum values fail.
  {
    std::string Bad = Good;
    Bad[HeaderBytes] = char(200); // status
    ByteReader R(Bad);
    MessageHeader Hdr;
    ASSERT_EQ(decodeHeader(R, Hdr), WireError::None);
    ParseReply Back;
    EXPECT_FALSE(decodeParseReply(R, Back));
  }
}

TEST(WireCodecTest, AbsurdCountsFailBeforeAllocating) {
  // A ParseReply whose error count claims 500M entries in a 40-byte body:
  // the decoder must reject it without resizing the vector.
  std::string Record;
  Record.reserve(64);
  putU32(Record, Magic);
  putU16(Record, ProtocolVersion);
  putU8(Record, uint8_t(Opcode::ParseReply));
  putU8(Record, 0);
  putU64(Record, 1);
  putU8(Record, 0);     // status
  putI64(Record, 0);    // tokens
  putI64(Record, 0);    // tree nodes
  putF64(Record, 0);    // millis
  putStr(Record, "");   // tree
  putStr(Record, "");   // diags
  putU32(Record, 500 * 1000 * 1000); // error count
  Message Out;
  std::string Err;
  EXPECT_FALSE(decodeReply(Record, Out, Err));

  // Same for a string length prefix pointing far past the record end.
  std::string Record2;
  putU32(Record2, Magic);
  putU16(Record2, ProtocolVersion);
  putU8(Record2, uint8_t(Opcode::StatsReply));
  putU8(Record2, 0);
  putU64(Record2, 2);
  putU32(Record2, 0xFFFFFFF0u); // string "length"
  Record2 += "tiny";
  EXPECT_FALSE(decodeReply(Record2, Out, Err));
}

//===----------------------------------------------------------------------===//
// Mangled-frame fuzz (the BundleTests idiom, pointed at the codec)
//===----------------------------------------------------------------------===//

TEST(WireCodecTest, ThousandMangledFramesNeverCrashTheDecoder) {
  // Seed corpus: one well-formed framed record of every message type.
  ParseArgs Args;
  Args.BundleHash = 77;
  Args.StartRule = "s";
  Args.Input = "x = [1, 2, 3];";
  Args.WantTree = true;
  ParseReply Reply;
  Reply.Status = uint8_t(ParseStatus::Recovered);
  Reply.TreeText = "(s (x))";
  Reply.Errors.push_back({2, 1, 4, "oops"});
  std::vector<std::string> Seeds;
  for (const std::string &Record :
       {encodeParseArgs(1, Args, false), encodeParseArgs(2, Args, true),
        encodeParseReply(3, Reply, false), encodeLoadBundleArgs(4, "grammar"),
        encodeLoadBundleReply(5, {99, 0, "G"}), encodeStatsArgs(6, true),
        encodeStatsReply(7, "{\"a\":1}"), encodeDrainArgs(8),
        encodeDrainReply(9),
        encodeErrorReply(10, WireError::BadBody, "nope"),
        encodeEditArgs(11, {5, EditActionApply, EditModeRecover, 77, 4, 2,
                            true, "s", "new text"}),
        encodeEditReply(12, {0, 0, 10, 5, 0, 3, 2, 4, 0.5, "(s)", ""})}) {
    std::string Framed;
    frameRecord(Framed, Record, /*MaxFragment=*/24); // multi-fragment seeds
    Seeds.push_back(Framed);
  }

  std::mt19937_64 Rng(0xC0DEC);
  auto Byte = [&] { return char(Rng() & 0xFF); };
  int CleanFailures = 0, Decoded = 0;
  for (int Iter = 0; Iter < 1000; ++Iter) {
    std::string Bytes = Seeds[Iter % Seeds.size()];
    switch (Rng() % 6) {
    case 0: // flip random bytes
      for (int K = 0; K < 1 + int(Rng() % 8); ++K)
        Bytes[Rng() % Bytes.size()] ^= char(1u << (Rng() % 8));
      break;
    case 1: // truncate
      Bytes.resize(Rng() % Bytes.size());
      break;
    case 2: // splice a huge/zero length prefix over a fragment header
      Bytes.resize(4);
      Bytes[0] = char(Rng() % 2 ? 0x7F : 0x00);
      Bytes[1] = Byte();
      Bytes[2] = Byte();
      Bytes[3] = Byte();
      break;
    case 3: // duplicate the frame back to back (duplicate request ids)
      Bytes += Bytes;
      break;
    case 4: // prepend garbage
      Bytes.insert(0, std::string(1 + Rng() % 32, Byte()));
      break;
    case 5: // pure noise
      Bytes.assign(Rng() % 256, 0);
      for (char &C : Bytes)
        C = Byte();
      break;
    }

    // Reassemble with tight limits, then decode whatever comes out, both
    // as a server (header + args) and as a client (decodeReply). Every
    // path must either succeed or fail cleanly — ASan/UBSan arbitrate.
    RecordReassembler Ra(/*MaxRecord=*/4096, /*MaxFragment=*/512);
    for (size_t Off = 0; Off < Bytes.size(); Off += 13)
      Ra.feed(std::string_view(Bytes).substr(Off, 13));
    std::string Record;
    while (true) {
      RecordReassembler::Status St = Ra.next(Record);
      if (St == RecordReassembler::Status::Error) {
        ++CleanFailures;
        break;
      }
      if (St == RecordReassembler::Status::NeedMore)
        break;
      ByteReader R(Record);
      MessageHeader Hdr;
      if (decodeHeader(R, Hdr) != WireError::None) {
        ++CleanFailures;
        continue;
      }
      bool Ok = false;
      switch (Hdr.Op) {
      case Opcode::Parse:
      case Opcode::ParseRecover: {
        ParseArgs A;
        Ok = decodeParseArgs(R, Hdr.Flags, A);
        break;
      }
      case Opcode::LoadBundle: {
        std::string B;
        Ok = decodeLoadBundleArgs(R, B);
        break;
      }
      case Opcode::Stats:
        Ok = decodeStatsArgs(R);
        break;
      case Opcode::Drain:
        Ok = decodeDrainBody(R);
        break;
      case Opcode::Edit: {
        EditArgs A;
        Ok = decodeEditArgs(R, Hdr.Flags, A);
        break;
      }
      default: {
        Message Out;
        std::string Err;
        Ok = decodeReply(Record, Out, Err);
        break;
      }
      }
      Ok ? ++Decoded : ++CleanFailures;
    }
  }
  // The sweep must exercise both outcomes: mangles that survive decoding
  // (e.g. duplicated frames) and mangles that are rejected.
  EXPECT_GT(Decoded, 0);
  EXPECT_GT(CleanFailures, 500);
}

} // namespace
