//===- tests/AnalysisTests.cpp - LL(*) analysis tests ---------------------===//
//
// Tests for the modified subset construction (paper Section 5), exercising
// the running examples of the paper directly.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

// The paper's Section 2 / Figure 1 grammar.
const char *Fig1Grammar = R"(
grammar S;
s    : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

TEST(Analysis, Figure1DfaPredictions) {
  auto AG = analyzeOrFail(Fig1Grammar);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  ASSERT_GE(D, 0);

  // "Upon int from input int x, the DFA immediately predicts the third
  // alternative (k = 1)."
  EXPECT_EQ(predictSeq(*AG, D, {"'int'"}), 3);
  // "Upon T (an ID) from Tx, the DFA needs to see the k = 2 token to
  // distinguish alternatives 1, 2, and 4."
  EXPECT_EQ(predictSeq(*AG, D, {"ID", "EOF"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"ID", "'='"}), 2);
  EXPECT_EQ(predictSeq(*AG, D, {"ID", "ID"}), 4);
  // "It is only upon unsigned that the DFA needs to scan arbitrarily
  // ahead, looking for a symbol (int or ID) that distinguishes between
  // alternatives 3 and 4."
  EXPECT_EQ(predictSeq(*AG, D, {"'unsigned'", "'int'"}), 3);
  EXPECT_EQ(predictSeq(*AG, D, {"'unsigned'", "ID"}), 4);
  EXPECT_EQ(predictSeq(*AG, D,
                       {"'unsigned'", "'unsigned'", "'unsigned'", "'int'"}),
            3);
  EXPECT_EQ(predictSeq(*AG, D,
                       {"'unsigned'", "'unsigned'", "'unsigned'", "ID"}),
            4);
}

TEST(Analysis, Figure1DfaIsCyclic) {
  auto AG = analyzeOrFail(Fig1Grammar);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::Cyclic);
  EXPECT_FALSE(AG->dfa(D).usedFallback());
  EXPECT_FALSE(AG->dfa(D).hasSynPredEdges());
}

TEST(Analysis, LL1Decision) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B | C ;
B : 'b' ;
C : 'c' ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::FixedK);
  EXPECT_EQ(AG->dfa(D).fixedK(), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"B"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"C"}), 2);
}

TEST(Analysis, LL2Decision) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B C | B D ;
B : 'b' ; C : 'c' ; D : 'd' ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::FixedK);
  EXPECT_EQ(AG->dfa(D).fixedK(), 2);
  EXPECT_EQ(predictSeq(*AG, D, {"B", "C"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"B", "D"}), 2);
}

TEST(Analysis, DeepFixedLookahead) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A B C D X | A B C D Y ;
A:'a'; B:'b'; C:'c'; D:'d'; X:'x'; Y:'y';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(AG->dfa(D).fixedK(), 5);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "B", "C", "D", "X"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "B", "C", "D", "Y"}), 2);
}

// The Section 2 grammar that is LL(*) but not LALR(k) for any k:
//   a : b A+ X | c A+ Y   with b, c empty.
TEST(Analysis, CyclicDfaBeatsLalrK) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : b A+ 'x' | c A+ 'y' ;
b : ;
c : ;
A : 'a' ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  // Both alternatives begin with an unbounded stretch of A; only the final
  // x/y decides. The DFA must be cyclic, not backtracking.
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::Cyclic);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "A", "'x'"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "A", "'y'"}), 2);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "A", "A", "A", "A", "'y'"}), 2);
}

// Paper Figure 6: S -> Ac | Ad with A -> aA | b. Recursion occurs in both
// alternatives, so DFA construction must abort (LikelyNonLLRegular) and
// fall back to LL(1).
TEST(Analysis, LikelyNonLLRegularFallsBack) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
s : a 'c' | a 'd' ;
a : 'a' a | 'b' ;
)",
                             Diags);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  EXPECT_TRUE(AG->dfa(D).usedFallback());
  // Without backtracking or predicates the conflict resolves statically in
  // favor of alternative 1, with a warning.
  EXPECT_TRUE(Diags.warningCount() > 0) << Diags.str();
  EXPECT_EQ(predictSeq(*AG, D, {"'a'"}), 1);
}

TEST(Analysis, LikelyNonLLRegularWithBacktrackGetsSynPreds) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
options { backtrack=true; }
s : a 'c' | a 'd' ;
a : 'a' a | 'b' ;
)",
                             Diags);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  EXPECT_TRUE(AG->dfa(D).usedFallback());
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::Backtrack);
  EXPECT_TRUE(AG->dfa(D).hasSynPredEdges());
}

// Paper Figure 2: mixed fixed lookahead and backtracking with m = 1.
const char *Fig2Grammar = R"(
grammar T;
options { backtrack=true; m=1; }
t    : '-'* ID | expr ;
expr : INT | '-' expr ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

TEST(Analysis, Figure2MixedLookaheadAndBacktracking) {
  auto AG = analyzeOrFail(Fig2Grammar);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "t");
  const LookaheadDfa &Dfa = AG->dfa(D);

  // "This DFA can immediately choose the appropriate alternative upon
  // either input x or 1 by looking at just the first symbol."
  EXPECT_EQ(predictSeq(*AG, D, {"ID"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"INT"}), 2);
  // One '-' of fixed lookahead still decides with the next token.
  EXPECT_EQ(predictSeq(*AG, D, {"'-'", "ID"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"'-'", "INT"}), 2);
  // "Upon - symbols, the DFA matches a few - before failing over to
  // backtracking": deep '-' prefixes end in a predicate-only state
  // (predictSeq reports 0: stuck on a state with only predicate edges).
  EXPECT_EQ(predictSeq(*AG, D, {"'-'", "'-'", "'-'", "'-'"}), 0);

  EXPECT_EQ(Dfa.decisionClass(), DecisionClass::Backtrack);
  EXPECT_TRUE(Dfa.hasSynPredEdges());
  EXPECT_TRUE(Dfa.overflowed());
  EXPECT_FALSE(Dfa.usedFallback());
}

TEST(Analysis, AmbiguousAlternativesResolveToLowest) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
a : B | B ;
B : 'b' ;
)",
                             Diags);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(predictSeq(*AG, D, {"B", "EOF"}), 1);
  EXPECT_TRUE(Diags.contains("ambiguous")) << Diags.str();
}

TEST(Analysis, PredicatesResolveAmbiguity) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
a : {p1}? B | {p2}? B ;
B : 'b' ;
)",
                             Diags);
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  const LookaheadDfa &Dfa = AG->dfa(D);
  EXPECT_TRUE(Dfa.hasSemPredEdges());
  EXPECT_FALSE(Dfa.hasSynPredEdges());
  // Predicated resolution: no ambiguity warning.
  EXPECT_FALSE(Diags.contains("ambiguous")) << Diags.str();
}

// "ANTLR strips away syntactic predicates" from decisions that analysis
// proves deterministic, even in PEG mode (Table 1 discussion).
TEST(Analysis, PegModeStripsUnneededBacktracking) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : A B | A C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::FixedK);
  EXPECT_EQ(AG->dfa(D).fixedK(), 2);
  EXPECT_FALSE(AG->dfa(D).hasSynPredEdges());
}

TEST(Analysis, SubruleDecisionsAreAnalyzed) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : (B | C)+ D? ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  // Decisions: (B|C) block, the + loop, and the D? optional.
  EXPECT_EQ(AG->numDecisions(), 3u);
  for (size_t D = 0; D < AG->numDecisions(); ++D)
    EXPECT_EQ(AG->dfa(int32_t(D)).decisionClass(), DecisionClass::FixedK);
}

TEST(Analysis, StaticStatsAddUp) {
  auto AG = analyzeOrFail(Fig1Grammar);
  ASSERT_TRUE(AG);
  const StaticStats &S = AG->stats();
  EXPECT_EQ(S.NumDecisions,
            S.NumFixed + S.NumCyclic + S.NumBacktrack);
  EXPECT_GT(S.NumDecisions, 0);
  EXPECT_GE(S.AnalysisSeconds, 0.0);
}

// EOF is usable as an explicit terminal.
TEST(Analysis, ExplicitEofDistinguishes) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : A EOF | A B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  EXPECT_EQ(predictSeq(*AG, D, {"A", "EOF"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"A", "B"}), 2);
}

// A nonterminal whose continuation language is context-free gets a regular
// approximation that still separates the alternatives (Section 5 example
// A -> [ A ] | id, an LL(1) decision despite the nested brackets).
TEST(Analysis, RegularApproximationOfContextFree) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : '[' a ']' | ID ;
ID : [a-z]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::FixedK);
  EXPECT_EQ(AG->dfa(D).fixedK(), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"'['"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"ID"}), 2);
}

TEST(Analysis, SynPredFragmentResolvesDecision) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { m=1; }
t : ('-'* ID)=> '-'* ID | expr ;
expr : INT | '-' expr ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "t");
  EXPECT_EQ(AG->dfa(D).decisionClass(), DecisionClass::Backtrack);
}

} // namespace
