//===- tests/BackendEquivalenceTests.cpp - llstar vs llfinite -------------===//
//
// The two prediction-analysis backends (analysis/backend/) lower into the
// same LookaheadDfa runtime representation, so every observable of a parse
// must be backend-independent: verdicts, diagnostics, heap and arena
// trees, error-node counts, and the committed recovery goldens. This suite
// enforces that corpus-wide:
//
//   - every fuzz-corpus and shipped grammar analyzes under both backends
//     (llfinite totality: the finite construction never aborts),
//   - sampled sentences + mutants parse identically through the
//     interpreter under both backends, with and without recovery, heap
//     and arena trees both,
//   - the compiled fast path over llfinite-derived tables matches the
//     llstar interpreter (the conformance contract is per-representation,
//     not per-backend),
//   - the recovery golden snapshots of the shipped grammars reproduce
//     byte for byte under llfinite.
//
// ParserStats are intentionally *not* compared across backends: the DFAs
// legitimately differ in shape, so lookahead depths and k histograms may
// differ while trees do not.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "analysis/backend/AnalysisBackend.h"
#include "compiled/CompiledParser.h"
#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "runtime/Arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::test;

namespace {

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

// Every grammar the repo ships or fuzzes: tests/corpus/*.g + grammars/*.g.
std::vector<std::filesystem::path> allGrammarFiles() {
  std::vector<std::filesystem::path> Files;
  for (const char *Dir : {"tests/corpus", "grammars"}) {
    auto Root = std::filesystem::path(LLSTAR_SOURCE_DIR) / Dir;
    for (const auto &Entry : std::filesystem::directory_iterator(Root))
      if (Entry.path().extension() == ".g")
        Files.push_back(Entry.path());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

// Deterministic per-file sampler seed (same scheme as the fuzz and
// compiled-conformance suites so the sentence sets are comparable).
uint64_t fileSeed(const std::filesystem::path &Path) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a
  for (char C : Path.filename().string())
    H = (H ^ uint64_t(uint8_t(C))) * 0x100000001b3ull;
  return H;
}

std::unique_ptr<AnalyzedGrammar> analyzeBackend(const std::string &Text,
                                                BackendKind Backend) {
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Text, Diags, Backend);
  if (!AG || Diags.hasErrors()) {
    ADD_FAILURE() << "grammar failed to analyze under "
                  << backendName(Backend) << ":\n"
                  << Diags.str();
    return nullptr;
  }
  return AG;
}

std::vector<Token> lex(const AnalyzedGrammar &AG, const std::string &Input) {
  DiagnosticEngine Diags;
  Lexer L(AG.grammar().lexerSpec(), Diags);
  return L.tokenize(Input, Diags);
}

/// Everything a parse may observe that must be backend-independent.
/// (ParserStats excluded: DFA shapes legitimately differ.)
struct Capture {
  bool Ok = false;
  bool DeadlineHit = false;
  std::string DiagText;
  std::string HeapTree;
  std::string ArenaTree;
  size_t HeapErrorNodes = 0;
};

ParserOptions baseOptions(const AnalyzedGrammar &AG, bool Recover) {
  ParserOptions Opts;
  Opts.Memoize = AG.grammar().Options.Memoize;
  Opts.Recover = Recover;
  return Opts;
}

Capture runInterpreted(const AnalyzedGrammar &AG, const std::string &Input,
                       bool Recover) {
  Capture C;
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    LLStarParser P(AG, Stream, nullptr, Diags, baseOptions(AG, Recover));
    auto Tree = P.parse();
    C.Ok = P.ok();
    C.DeadlineHit = P.deadlineExpired();
    C.DiagText = Diags.str();
    if (Tree) {
      C.HeapTree = Tree->str(AG.grammar());
      C.HeapErrorNodes = Tree->numErrorNodes();
    }
  }
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts = baseOptions(AG, Recover);
    Opts.TreeArena = &TreeArena;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    P.parse();
    if (P.arenaTree())
      C.ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
  }
  return C;
}

Capture runCompiled(const AnalyzedGrammar &AG,
                    const compiled::TablesView &View,
                    const std::string &Input, bool Recover) {
  Capture C;
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    compiled::CompiledParser P(AG, View, Stream, nullptr, Diags,
                               baseOptions(AG, Recover));
    auto Tree = P.parse();
    C.Ok = P.ok();
    C.DeadlineHit = P.deadlineExpired();
    C.DiagText = Diags.str();
    if (Tree) {
      C.HeapTree = Tree->str(AG.grammar());
      C.HeapErrorNodes = Tree->numErrorNodes();
    }
  }
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts = baseOptions(AG, Recover);
    Opts.TreeArena = &TreeArena;
    compiled::CompiledParser P(AG, View, Stream, nullptr, Diags, Opts);
    P.parse();
    if (P.arenaTree())
      C.ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
  }
  return C;
}

void expectIdentical(const Capture &Star, const Capture &Fin,
                     const std::string &Context) {
  EXPECT_EQ(Star.Ok, Fin.Ok) << Context;
  EXPECT_EQ(Star.DeadlineHit, Fin.DeadlineHit) << Context;
  EXPECT_EQ(Star.DiagText, Fin.DiagText) << Context;
  EXPECT_EQ(Star.HeapTree, Fin.HeapTree) << Context;
  EXPECT_EQ(Star.ArenaTree, Fin.ArenaTree) << Context;
  EXPECT_EQ(Star.HeapErrorNodes, Fin.HeapErrorNodes) << Context;
}

//===----------------------------------------------------------------------===//
// Corpus-wide differential replay
//===----------------------------------------------------------------------===//

class BackendEquivalence
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(BackendEquivalence, ParsesIdenticallyUnderBothBackends) {
  const std::filesystem::path &Path = GetParam();
  std::string Text = slurp(Path);
  ASSERT_FALSE(Text.empty());

  auto Star = analyzeBackend(Text, BackendKind::LLStar);
  auto Fin = analyzeBackend(Text, BackendKind::LLFinite);
  ASSERT_TRUE(Star);
  ASSERT_TRUE(Fin); // llfinite totality: must analyze anything llstar does
  EXPECT_STREQ(Star->backendName(), "llstar");
  EXPECT_STREQ(Fin->backendName(), "llfinite");

  // The compiled fast path over llfinite-derived tables rides along: same
  // flattening, different DFA contents.
  compiled::CompiledTables FinTables = compiled::CompiledTables::build(*Fin);

  fuzz::SentenceSampler Sampler(Star->grammar(), fileSeed(Path));
  for (int S = 0; S < 6; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    std::vector<std::string> Inputs{fuzz::SentenceSampler::render(Tokens)};
    for (int M = 0; M < 2; ++M)
      Inputs.push_back(
          fuzz::SentenceSampler::render(Sampler.mutate(Tokens)));
    for (const std::string &Input : Inputs) {
      for (bool Recover : {false, true}) {
        std::string Context = Path.filename().string() +
                              (Recover ? " [recover] <" : " <") + Input + ">";
        Capture IntStar = runInterpreted(*Star, Input, Recover);
        Capture IntFin = runInterpreted(*Fin, Input, Recover);
        expectIdentical(IntStar, IntFin, "interpreter " + Context);
        Capture CmpFin = runCompiled(*Fin, FinTables.view(), Input, Recover);
        expectIdentical(IntStar, CmpFin, "compiled " + Context);
      }
    }
  }
}

std::string grammarTestName(
    const ::testing::TestParamInfo<std::filesystem::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!std::isalnum(uint8_t(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(AllGrammars, BackendEquivalence,
                         ::testing::ValuesIn(allGrammarFiles()),
                         grammarTestName);

//===----------------------------------------------------------------------===//
// Recovery goldens and decision-covering seeds under llfinite
//===----------------------------------------------------------------------===//

struct GoldenCase {
  const char *Grammar;
  const char *Input;
};

// Same broken inputs RecoveryTests and CompiledConformanceTests pin; the
// llfinite tables must reproduce the committed snapshots byte for byte.
const GoldenCase GoldenCases[] = {
    {"csv", "a,b\n\"x\" y,c\n"},
    {"dot", "digraph g { a -> -> b ; x = ; }"},
    {"ini", "[a]\nx 1\n[b\ny = 2\n"},
    {"json", "{\"a\": 1 \"b\": 2,}"},
    {"lambda", "lambda x (x"},
    {"lua", "x = = 1"},
    {"sexpr", "(a b)) (c"},
};

TEST(BackendEquivalenceGolden, RecoveredTreesMatchSnapshotsUnderLLFinite) {
  for (const GoldenCase &C : GoldenCases) {
    SCOPED_TRACE(C.Grammar);
    std::string Text = slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) /
                             "grammars" / (std::string(C.Grammar) + ".g"));
    ASSERT_FALSE(Text.empty());
    auto Fin = analyzeBackend(Text, BackendKind::LLFinite);
    ASSERT_TRUE(Fin);

    Capture Cap = runInterpreted(*Fin, C.Input, /*Recover=*/true);
    EXPECT_FALSE(Cap.Ok);
    EXPECT_GE(Cap.HeapErrorNodes, 1u) << Cap.HeapTree;
    EXPECT_EQ(Cap.ArenaTree, Cap.HeapTree);

    std::string Expected =
        slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) / "tests" / "golden" /
              "recovery" / (std::string(C.Grammar) + ".txt"));
    ASSERT_FALSE(Expected.empty());
    EXPECT_EQ(std::string(C.Input) + "\n" + Cap.HeapTree + "\n", Expected)
        << "llfinite recovery diverges from the committed golden snapshot";
  }
}

TEST(BackendEquivalenceGolden, DecisionCoveringSeedsAgree) {
  // SentenceGen's decision-covering minimal sentences are guaranteed
  // valid, so every prediction in the grammar runs hot through both
  // backends' tables.
  for (const GoldenCase &C : GoldenCases) {
    SCOPED_TRACE(C.Grammar);
    std::string Text = slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) /
                             "grammars" / (std::string(C.Grammar) + ".g"));
    auto Star = analyzeBackend(Text, BackendKind::LLStar);
    auto Fin = analyzeBackend(Text, BackendKind::LLFinite);
    ASSERT_TRUE(Star);
    ASSERT_TRUE(Fin);

    fuzz::SentenceGen Gen(*Star);
    std::vector<std::string> Inputs;
    for (const auto &Seed : Gen.seeds())
      Inputs.push_back(fuzz::SentenceSampler::render(Seed));
    ASSERT_FALSE(Inputs.empty());
    if (Inputs.size() > 8)
      Inputs.resize(8);
    for (const std::string &Input : Inputs) {
      Capture IntStar = runInterpreted(*Star, Input, /*Recover=*/false);
      EXPECT_TRUE(IntStar.Ok) << Input;
      Capture IntFin = runInterpreted(*Fin, Input, /*Recover=*/false);
      expectIdentical(IntStar, IntFin,
                      std::string(C.Grammar) + " <" + Input + ">");
    }
  }
}

} // namespace
