//===- tests/IntegrationTests.cpp - Six-grammar integration tests ---------===//
//
// End-to-end checks over the benchmark grammar suite (the paper's Figure 12
// analogs): every grammar analyzes, its synthetic workload lexes and
// parses cleanly with the LL(*) parser, and the runtime statistics show
// the paper's qualitative shape (avg lookahead near 1, sparse
// backtracking).
//
//===----------------------------------------------------------------------===//

#include "BenchGrammars.h"
#include "BenchHarness.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::bench;

namespace {

class BenchGrammarTest : public ::testing::TestWithParam<const char *> {};

TEST_P(BenchGrammarTest, AnalyzesWithoutErrors) {
  const BenchGrammar &Spec = benchGrammar(GetParam());
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(Spec.Text, Diags);
  ASSERT_TRUE(AG) << Diags.str();
  EXPECT_GT(AG->numDecisions(), 5u);
  const StaticStats &S = AG->stats();
  EXPECT_EQ(S.NumDecisions, S.NumFixed + S.NumCyclic + S.NumBacktrack);
}

TEST_P(BenchGrammarTest, WorkloadParsesCleanly) {
  const BenchGrammar &Spec = benchGrammar(GetParam());
  PreparedGrammar P = PreparedGrammar::prepare(Spec);
  for (unsigned Seed : {1u, 7u, 13u, 21u, 34u}) {
    std::string Input = Spec.Workload(10, Seed);
    TokenStream Stream = P.tokenize(Input);
    DiagnosticEngine Diags;
    LLStarParser Parser(*P.AG, Stream, &P.Env, Diags);
    bool Ok = P.runParse(Stream, Parser);
    EXPECT_TRUE(Ok) << "grammar " << Spec.Name << " seed " << Seed << ":\n"
                    << Diags.str() << "\ninput:\n"
                    << Input.substr(0, 2000);
  }
}

TEST_P(BenchGrammarTest, LookaheadShapeMatchesPaper) {
  const BenchGrammar &Spec = benchGrammar(GetParam());
  PreparedGrammar P = PreparedGrammar::prepare(Spec);
  std::string Input = Spec.Workload(20, 42);
  TokenStream Stream = P.tokenize(Input);
  DiagnosticEngine Diags;
  LLStarParser Parser(*P.AG, Stream, &P.Env, Diags);
  ASSERT_TRUE(P.runParse(Stream, Parser)) << Diags.str();

  const ParserStats &S = Parser.stats();
  // Paper Table 3: the average decision event uses one or two tokens.
  EXPECT_GE(S.avgLookahead(), 1.0);
  EXPECT_LE(S.avgLookahead(), 2.5) << "grammar " << Spec.Name;
  // Paper Table 4: only a small fraction of decision events backtrack.
  EXPECT_LE(S.backtrackEventFraction(), 0.25) << "grammar " << Spec.Name;
}

INSTANTIATE_TEST_SUITE_P(Suite, BenchGrammarTest,
                         ::testing::Values("Java", "RatsC", "RatsJava",
                                           "Basic", "Sql", "CSharp"));

TEST(Integration, WorkloadsAreDeterministic) {
  for (const BenchGrammar &Spec : benchGrammars()) {
    EXPECT_EQ(Spec.Workload(5, 3), Spec.Workload(5, 3)) << Spec.Name;
    EXPECT_NE(Spec.Workload(5, 3), Spec.Workload(5, 4)) << Spec.Name;
  }
}

TEST(Integration, PegModeGrammarsStripMostBacktracking) {
  // Paper Table 1: even in PEG mode, analysis removes syntactic predicates
  // from most decisions (Java1.5 keeps 11.8%, RatsC 22.4%).
  for (const char *Name : {"RatsC", "RatsJava"}) {
    const BenchGrammar &Spec = benchGrammar(Name);
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Spec.Text, Diags);
    ASSERT_TRUE(AG) << Diags.str();
    const StaticStats &S = AG->stats();
    double BacktrackFraction = double(S.NumBacktrack) / S.NumDecisions;
    EXPECT_GT(BacktrackFraction, 0.0) << Name;
    EXPECT_LT(BacktrackFraction, 0.5) << Name;
  }
}

TEST(Integration, MostDecisionsAreLL1) {
  // Paper Table 2: LL(1) fractions range from 72% to 89%.
  for (const BenchGrammar &Spec : benchGrammars()) {
    DiagnosticEngine Diags;
    auto AG = analyzeGrammarText(Spec.Text, Diags);
    ASSERT_TRUE(AG) << Diags.str();
    EXPECT_GT(AG->stats().ll1Fraction(), 0.5) << Spec.Name;
  }
}

} // namespace
