//===- tests/GrammarPackTests.cpp - grammars/ directory sweep -------------===//
//
// Every grammar shipped in grammars/ must analyze cleanly and parse its
// sample inputs — the same files a user would feed `llstar analyze` and
// `llstar parse`.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace llstar;
using namespace llstar::test;

namespace {

std::string readGrammarFile(const std::string &Name) {
  std::string Path = std::string(LLSTAR_SOURCE_DIR) + "/grammars/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "cannot open " << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

struct PackCase {
  const char *File;
  const char *Start;
  std::vector<const char *> Good;
  std::vector<const char *> Bad;
};

class GrammarPack : public ::testing::TestWithParam<PackCase> {};

TEST_P(GrammarPack, AnalyzesAndParses) {
  const PackCase &C = GetParam();
  auto AG = analyzeOrFail(readGrammarFile(C.File));
  ASSERT_TRUE(AG);
  for (const char *Input : C.Good)
    EXPECT_TRUE(parses(*AG, Input, C.Start))
        << C.File << " should accept: " << Input;
  for (const char *Input : C.Bad)
    EXPECT_FALSE(parses(*AG, Input, C.Start))
        << C.File << " should reject: " << Input;
}

INSTANTIATE_TEST_SUITE_P(
    Pack, GrammarPack,
    ::testing::Values(
        PackCase{"json.g",
                 "json",
                 {R"({"a": [1, 2.5e3, true], "b": {"c": null}})", "42",
                  R"("str")", "[[],[]]"},
                 {R"({"a":})", "[1,]", "{1: 2}"}},
        PackCase{"csv.g",
                 "file",
                 {"a,b,c\n1,2,3\n4,,6\n", "x\n",
                  "\"quoted, field\",\"with \"\"escapes\"\"\"\nplain,2\n"},
                 {"a,b\n\"q\"x\n"}},
        PackCase{"sexpr.g",
                 "program",
                 {"(define (sq x) (* x x))", "'(1 2 3)", "(+ 1 (- 2 3)) ; c",
                  "atom"},
                 {"(unbalanced", "())("}},
        PackCase{"dot.g",
                 "graph",
                 {"digraph G { a -> b; b -> c [label=\"e\"]; }",
                  "strict graph { node [shape=box] x; y; x -- y; }",
                  "digraph { subgraph cluster { a; } a -> b -> c; "
                  "rankdir = LR; }"},
                 {"digraph { a -> ; }", "graph a -- b"}},
        PackCase{"lambda.g",
                 "program",
                 {"lambda x . x", "let id = lambda x . x in id id 42",
                  "(lambda f . lambda x . f (f x)) succ 0"},
                 {"lambda . x", "let x = in x"}},
        PackCase{"ini.g",
                 "file",
                 {"[a]\nkey = 1\nlist = x, y, z\n[b]\ns = \"v\"\n",
                  "# only comments\n"},
                 {"[unclosed\n", "[a]\nnoequals\n"}}));

TEST(GrammarPack, LambdaApplicationIsLeftAssociative) {
  auto AG = analyzeOrFail(readGrammarFile("lambda.g"));
  ASSERT_TRUE(AG);
  // `f x y` must parse as ((f x) y): the rewritten app rule's loop form is
  // (app f x y) — flat, folded left by convention.
  EXPECT_EQ(parseToString(*AG, "f x y", "app"),
            "(app (atom f) (atom x) (atom y))");
}

} // namespace

namespace {

TEST(GrammarPack, LuaSubset) {
  auto AG = analyzeOrFail(readGrammarFile("lua.g"));
  ASSERT_TRUE(AG);

  // The assignment-vs-call decision: both start with a long prefixexp.
  EXPECT_TRUE(parses(*AG, "a.b[k].c = v", "chunk"));
  EXPECT_TRUE(parses(*AG, "a.b[k].c(x)", "chunk"));
  EXPECT_TRUE(parses(*AG, "a.b, c[1] = 1, 2", "chunk"));

  // Both for-forms.
  EXPECT_TRUE(parses(*AG, "for i = 1, 10, 2 do print(i) end", "chunk"));
  EXPECT_TRUE(parses(*AG, "for k, v in pairs(t) do print(k, v) end",
                     "chunk"));

  // A realistic snippet.
  EXPECT_TRUE(parses(*AG, R"(
-- fib
local function fib(n)
  if n < 2 then return n end
  return fib(n - 1) + fib(n - 2)
end

local t = { x = 1, [2] = "two", 3; nested = { a, b } }
while t.x < 10 do
  t.x = t.x + 1
end
repeat
  io.write("hello", "\n")
until done or #t > 5
print(fib(10), 2 ^ 3 ^ 2, "a" .. "b" .. "c", not flag)
obj:method(arg){ extra = 1 }
)",
                     "chunk"));

  // Rejections.
  EXPECT_FALSE(parses(*AG, "a.b = ", "chunk"));
  EXPECT_FALSE(parses(*AG, "if x then y() end end", "chunk"));
  EXPECT_FALSE(parses(*AG, "for = 1, 2 do end", "chunk"));
}

TEST(GrammarPack, LuaRightAssociativity) {
  auto AG = analyzeOrFail(readGrammarFile("lua.g"));
  ASSERT_TRUE(AG);
  // 2^3^2 nests right: (exp 2 ^ (exp 3 ^ (exp 2))).
  EXPECT_EQ(parseToString(*AG, "2^3^2", "exp"),
            "(exp 2 ^ (exp 3 ^ (exp 2)))");
  // .. nests right as well.
  std::string Concat = parseToString(*AG, "a .. b .. c", "exp");
  EXPECT_NE(Concat.find(".. (exp"), std::string::npos) << Concat;
}

} // namespace
