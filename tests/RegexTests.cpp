//===- tests/RegexTests.cpp - Regex substrate tests -----------------------===//
//
// The regex engine (AST -> Thompson NFA -> subset-constructed DFA) is the
// lexer substrate. Property tests check the DFA against the NFA reference
// matcher on random inputs, and minimization against the unminimized DFA.
//
//===----------------------------------------------------------------------===//

#include "regex/CharDFA.h"
#include "regex/NFA.h"
#include "regex/RegexParser.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <random>

using namespace llstar;
using namespace llstar::regex;

namespace {

RegexNode::Ptr parseOrFail(const std::string &Pattern) {
  DiagnosticEngine Diags;
  RegexNode::Ptr Re = parseRegex(Pattern, Diags);
  EXPECT_TRUE(Re) << "pattern /" << Pattern << "/ failed:\n" << Diags.str();
  return Re;
}

/// Compiles one pattern and checks acceptance of the whole input.
bool matches(const std::string &Pattern, const std::string &Input) {
  RegexNode::Ptr Re = parseOrFail(Pattern);
  if (!Re)
    return false;
  Nfa N;
  N.addPattern(*Re, /*Tag=*/0, /*Priority=*/0);
  return CharDfa::fromNfa(N).matchWhole(Input) == 0;
}

TEST(Regex, Literals) {
  EXPECT_TRUE(matches("abc", "abc"));
  EXPECT_FALSE(matches("abc", "ab"));
  EXPECT_FALSE(matches("abc", "abcd"));
  EXPECT_FALSE(matches("abc", ""));
}

TEST(Regex, Alternation) {
  EXPECT_TRUE(matches("cat|dog", "cat"));
  EXPECT_TRUE(matches("cat|dog", "dog"));
  EXPECT_FALSE(matches("cat|dog", "cow"));
}

TEST(Regex, Quantifiers) {
  EXPECT_TRUE(matches("a*", ""));
  EXPECT_TRUE(matches("a*", "aaaa"));
  EXPECT_FALSE(matches("a+", ""));
  EXPECT_TRUE(matches("a+", "a"));
  EXPECT_TRUE(matches("ab?c", "ac"));
  EXPECT_TRUE(matches("ab?c", "abc"));
  EXPECT_FALSE(matches("ab?c", "abbc"));
}

TEST(Regex, Classes) {
  EXPECT_TRUE(matches("[a-z]+", "hello"));
  EXPECT_FALSE(matches("[a-z]+", "Hello"));
  EXPECT_TRUE(matches("[^0-9]+", "abc!"));
  EXPECT_FALSE(matches("[^0-9]+", "ab1"));
  EXPECT_TRUE(matches("[a\\-z]", "-")); // escaped dash is literal
  EXPECT_TRUE(matches("[]x]", "]"));    // ']' first in class is literal
}

TEST(Regex, EscapesAndDot) {
  EXPECT_TRUE(matches("a\\.b", "a.b"));
  EXPECT_FALSE(matches("a\\.b", "axb"));
  EXPECT_TRUE(matches("a.b", "axb"));
  EXPECT_TRUE(matches("\\n", "\n"));
  EXPECT_TRUE(matches("\\x41", "A"));
}

TEST(Regex, Grouping) {
  EXPECT_TRUE(matches("(ab)+", "ababab"));
  EXPECT_FALSE(matches("(ab)+", "aba"));
  EXPECT_TRUE(matches("(a|b)*c", "abbac"));
}

TEST(Regex, ParseErrors) {
  DiagnosticEngine Diags;
  EXPECT_EQ(parseRegex("(a", Diags), nullptr);
  EXPECT_EQ(parseRegex("a)", Diags), nullptr);
  EXPECT_EQ(parseRegex("[a-", Diags), nullptr);
  EXPECT_EQ(parseRegex("*a", Diags), nullptr);
  EXPECT_EQ(parseRegex("[z-a]", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Regex, MatchesEmptyComputation) {
  EXPECT_TRUE(parseOrFail("a*")->matchesEmpty());
  EXPECT_TRUE(parseOrFail("a?b*")->matchesEmpty());
  EXPECT_FALSE(parseOrFail("a+")->matchesEmpty());
  EXPECT_TRUE(parseOrFail("(a|b*)")->matchesEmpty());
  EXPECT_FALSE(parseOrFail("(a|b)c*")->matchesEmpty());
}

TEST(Regex, MultiPatternPriority) {
  // "if" (priority 0) must beat identifier (priority 1) on a tie.
  Nfa N;
  N.addPattern(*parseOrFail("if"), /*Tag=*/1, /*Priority=*/0);
  N.addPattern(*parseOrFail("[a-z]+"), /*Tag=*/2, /*Priority=*/1);
  CharDfa D = CharDfa::fromNfa(N);
  EXPECT_EQ(D.matchWhole("if"), 1);
  EXPECT_EQ(D.matchWhole("iff"), 2);
  EXPECT_EQ(D.matchWhole("x"), 2);
}

TEST(Regex, LongestPrefixMatch) {
  Nfa N;
  N.addPattern(*parseOrFail("a+"), 0, 0);
  CharDfa D = CharDfa::fromNfa(N);
  int32_t Tag = -1;
  EXPECT_EQ(D.matchLongestPrefix("aaab", Tag), 3);
  EXPECT_EQ(Tag, 0);
  EXPECT_EQ(D.matchLongestPrefix("b", Tag), -1);
}

/// Random-input agreement between the DFA, the minimized DFA, and the NFA
/// reference matcher.
struct PatternCase {
  const char *Pattern;
};

class RegexEquivalence : public ::testing::TestWithParam<PatternCase> {};

TEST_P(RegexEquivalence, DfaAgreesWithNfaAndMinimized) {
  RegexNode::Ptr Re = parseOrFail(GetParam().Pattern);
  ASSERT_TRUE(Re);
  Nfa N;
  N.addPattern(*Re, 0, 0);
  CharDfa D = CharDfa::fromNfa(N);
  CharDfa Min = D.minimized();
  EXPECT_LE(Min.size(), D.size());

  std::mt19937 Rng(1234);
  const char Alphabet[] = "abc01.";
  for (int Trial = 0; Trial < 500; ++Trial) {
    size_t Len = Rng() % 10;
    std::string Input;
    for (size_t I = 0; I < Len; ++I)
      Input += Alphabet[Rng() % (sizeof(Alphabet) - 1)];
    int32_t Expected = N.matchWhole(Input);
    EXPECT_EQ(D.matchWhole(Input), Expected) << "/" << GetParam().Pattern
                                             << "/ on \"" << Input << "\"";
    EXPECT_EQ(Min.matchWhole(Input), Expected)
        << "minimized /" << GetParam().Pattern << "/ on \"" << Input << "\"";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, RegexEquivalence,
    ::testing::Values(PatternCase{"a*b"}, PatternCase{"(a|b)*abb"},
                      PatternCase{"a?a?a?aaa"}, PatternCase{"[a-c]+[0-1]*"},
                      PatternCase{"(ab|ba)*"}, PatternCase{"a(b|c)*a|b+"},
                      PatternCase{"(a|b)(a|b)(a|b)"}, PatternCase{"[^a]b*"},
                      PatternCase{"((a)|(ab))(c|bc)"}));

TEST(Regex, MinimizationReachesMinimum) {
  // a?a?a? has a known 4-state minimal DFA (counting 0..3 a's) plus no dead
  // state in our representation.
  RegexNode::Ptr Re = parseOrFail("a?a?a?");
  Nfa N;
  N.addPattern(*Re, 0, 0);
  CharDfa Min = CharDfa::fromNfa(N).minimized();
  EXPECT_EQ(Min.size(), 4u);
}

} // namespace
