//===- tests/ServiceTests.cpp - Batch parsing service ---------------------===//
//
// Coverage for the src/service/ subsystem: the bump-pointer arena and
// arena parse trees, the shared grammar-bundle cache, and the
// multi-threaded ParseService — determinism across thread counts,
// graceful deadline/queue-full/token-limit rejection, and merged
// statistics. These tests are also the workload of the ThreadSanitizer CI
// job; keep them free of intentional races.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "codegen/Serializer.h"
#include "fuzz/SentenceSampler.h"
#include "runtime/Arena.h"
#include "runtime/ArenaParseTree.h"
#include "service/ParseService.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <map>
#include <thread>

using namespace llstar;
using namespace llstar::test;

namespace {

const char *ExprGrammar = R"(
grammar Expr;
s    : expr EOF ;
expr : term (('+' | '-') term)* ;
term : atom ('*' atom)* ;
atom : INT | '(' expr ')' ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

std::shared_ptr<const GrammarBundle> bundleOrFail(GrammarBundleCache &Cache,
                                                  std::string_view Text) {
  DiagnosticEngine Diags;
  auto Bundle = Cache.get(Text, Diags);
  EXPECT_TRUE(Bundle) << Diags.str();
  return Bundle;
}

//===----------------------------------------------------------------------===//
// Arena
//===----------------------------------------------------------------------===//

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena A(/*BlockBytes=*/64); // tiny blocks force growth
  std::vector<char *> Ptrs;
  for (int I = 0; I < 100; ++I) {
    char *P = static_cast<char *>(A.allocate(24, 8));
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % 8, 0u);
    std::memset(P, I, 24); // ASan-visible if regions overlap
    Ptrs.push_back(P);
  }
  for (int I = 0; I < 100; ++I)
    for (int B = 0; B < 24; ++B)
      ASSERT_EQ(Ptrs[I][B], char(I));
  EXPECT_EQ(A.bytesUsed(), 100u * 24);
  EXPECT_GE(A.bytesReserved(), A.bytesUsed());
}

TEST(ArenaTest, ResetRecyclesTheLargestBlock) {
  Arena A(/*BlockBytes=*/64);
  for (int I = 0; I < 1000; ++I)
    A.allocate(32, 8);
  size_t Reserved = A.bytesReserved();
  A.reset();
  EXPECT_EQ(A.bytesUsed(), 0u);
  EXPECT_LE(A.bytesReserved(), Reserved);
  // A same-sized second round must not grow the arena further: the kept
  // block already fits the peak.
  for (int Round = 0; Round < 3; ++Round) {
    for (int I = 0; I < 1000; ++I)
      A.allocate(32, 8);
    size_t After = A.bytesReserved();
    A.reset();
    EXPECT_LE(A.bytesReserved(), After);
  }
}

TEST(ArenaTest, CreateConstructsInPlace) {
  struct Node {
    int A;
    double B;
  };
  Arena Arena;
  Node *N = Arena.create<Node>(7, 2.5);
  EXPECT_EQ(N->A, 7);
  EXPECT_EQ(N->B, 2.5);
}

TEST(ArenaParseTreeTest, BuildsAndRendersLikeHeapTrees) {
  auto AG = analyzeOrFail(ExprGrammar);
  ASSERT_TRUE(AG);
  std::string Input = "1 + 2 * (3 - 4)";

  // Heap mode.
  TokenStream S1 = lexOrFail(*AG, Input);
  DiagnosticEngine D1;
  LLStarParser P1(*AG, S1, nullptr, D1);
  auto HeapTree = P1.parse("");
  ASSERT_TRUE(P1.ok()) << D1.str();

  // Arena mode.
  Arena A;
  TokenStream S2 = lexOrFail(*AG, Input);
  DiagnosticEngine D2;
  ParserOptions Opts;
  Opts.TreeArena = &A;
  LLStarParser P2(*AG, S2, nullptr, D2, Opts);
  auto NoHeapTree = P2.parse("");
  ASSERT_TRUE(P2.ok()) << D2.str();
  EXPECT_EQ(NoHeapTree, nullptr); // arena mode returns no heap tree
  ASSERT_NE(P2.arenaTree(), nullptr);

  EXPECT_EQ(HeapTree->str(AG->grammar()),
            P2.arenaTree()->str(AG->grammar(), S2));
  EXPECT_GT(A.bytesUsed(), 0u);
  EXPECT_GT(P2.arenaTree()->size(), 1u);
}

//===----------------------------------------------------------------------===//
// GrammarBundleCache
//===----------------------------------------------------------------------===//

TEST(GrammarBundleCacheTest, IdenticalContentSharesOneBundle) {
  GrammarBundleCache Cache;
  auto B1 = bundleOrFail(Cache, ExprGrammar);
  auto B2 = bundleOrFail(Cache, ExprGrammar);
  ASSERT_TRUE(B1 && B2);
  EXPECT_EQ(B1.get(), B2.get()); // the same shared instance
  EXPECT_EQ(B1->contentHash(), B2->contentHash());

  auto Stats = Cache.stats();
  EXPECT_EQ(Stats.Misses, 1);
  EXPECT_EQ(Stats.Hits, 1);
  EXPECT_EQ(Stats.Entries, 1u);
}

TEST(GrammarBundleCacheTest, RejectsCorruptBundlesWithoutCaching) {
  GrammarBundleCache Cache;
  DiagnosticEngine Diags;
  EXPECT_EQ(Cache.get("llstarbundle 1 4 123\nXYZ", Diags), nullptr);
  EXPECT_TRUE(Diags.hasErrors());
  auto Stats = Cache.stats();
  EXPECT_EQ(Stats.LoadFailures, 1);
  EXPECT_EQ(Stats.Entries, 0u);
}

TEST(GrammarBundleCacheTest, LoadsSerializedBundles) {
  auto AG = analyzeOrFail(ExprGrammar);
  ASSERT_TRUE(AG);
  std::string Bytes = writeBundle(*AG);
  ASSERT_TRUE(looksLikeBundle(Bytes));

  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, Bytes);
  ASSERT_TRUE(Bundle);
  EXPECT_EQ(Bundle->name(), "Expr");

  // The loaded tables parse exactly like the source grammar.
  DiagnosticEngine Diags;
  std::vector<Token> Tokens = Bundle->tokenize("2 * 3 + 4", Diags);
  ASSERT_FALSE(Diags.hasErrors());
  TokenStream Stream(std::move(Tokens));
  LLStarParser P(Bundle->analyzed(), Stream, nullptr, Diags);
  auto Tree = P.parse("");
  ASSERT_TRUE(P.ok()) << Diags.str();
  EXPECT_EQ(Tree->str(Bundle->grammar()),
            parseToString(*AG, "2 * 3 + 4"));
}

TEST(GrammarBundleCacheTest, ConcurrentGetsProduceOneEntry) {
  GrammarBundleCache Cache;
  std::vector<std::thread> Threads;
  std::vector<std::shared_ptr<const GrammarBundle>> Bundles(8);
  for (int I = 0; I < 8; ++I)
    Threads.emplace_back([&Cache, &Bundles, I] {
      DiagnosticEngine Diags;
      Bundles[size_t(I)] = Cache.get(ExprGrammar, Diags);
    });
  for (std::thread &T : Threads)
    T.join();
  for (const auto &B : Bundles) {
    ASSERT_TRUE(B);
    EXPECT_EQ(B.get(), Bundles[0].get());
  }
  EXPECT_EQ(Cache.stats().Entries, 1u);
}

//===----------------------------------------------------------------------===//
// ParseService
//===----------------------------------------------------------------------===//

ParseRequest makeReq(std::shared_ptr<const GrammarBundle> Bundle,
                     std::string Id, std::string Input,
                     bool WantTree = true) {
  ParseRequest Req;
  Req.Bundle = std::move(Bundle);
  Req.Id = std::move(Id);
  Req.Input = std::move(Input);
  Req.WantTree = WantTree;
  return Req;
}

TEST(ParseServiceTest, ParsesAndClassifiesResults) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 2;
  ParseService Service(Config);

  auto FOk = Service.submit(makeReq(Bundle, "ok", "1 + 2 * 3"));
  auto FSyntax = Service.submit(makeReq(Bundle, "syn", "1 + + 2"));
  auto FLex = Service.submit(makeReq(Bundle, "lex", "1 + @"));
  auto FBadRule = [&] {
    ParseRequest Req = makeReq(Bundle, "rule", "1");
    Req.StartRule = "nosuchrule";
    return Service.submit(std::move(Req));
  }();
  auto FNoBundle = Service.submit(makeReq(nullptr, "nobundle", "1"));

  ParseResult ROk = FOk.get();
  EXPECT_EQ(ROk.Status, ParseStatus::Ok);
  // The arena-built service tree renders byte-identically to a plain
  // single-threaded heap parse.
  auto AG = analyzeOrFail(ExprGrammar);
  ASSERT_TRUE(AG);
  EXPECT_EQ(ROk.TreeText, parseToString(*AG, "1 + 2 * 3"));
  EXPECT_EQ(ROk.NumTokens, 5);
  EXPECT_GT(ROk.TreeNodes, 0);

  EXPECT_EQ(FSyntax.get().Status, ParseStatus::SyntaxError);
  EXPECT_EQ(FLex.get().Status, ParseStatus::LexError);
  EXPECT_EQ(FBadRule.get().Status, ParseStatus::BadRequest);
  EXPECT_EQ(FNoBundle.get().Status, ParseStatus::BadRequest);

  Service.shutdown();
  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.Submitted, 5);
  EXPECT_EQ(M.Ok, 1);
  EXPECT_EQ(M.SyntaxErrors, 1);
  EXPECT_EQ(M.LexErrors, 1);
  EXPECT_EQ(M.Completed, 3);
}

TEST(ParseServiceTest, TokenLimitRejectsGracefully) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 1;
  Config.MaxTokens = 3;
  ParseService Service(Config);

  EXPECT_EQ(Service.submit(makeReq(Bundle, "small", "1 + 2")).get().Status,
            ParseStatus::Ok);
  ParseResult Big = Service.submit(makeReq(Bundle, "big", "1 + 2 + 3")).get();
  EXPECT_EQ(Big.Status, ParseStatus::TooManyTokens);
  EXPECT_NE(Big.DiagText.find("limit is 3"), std::string::npos);
  EXPECT_EQ(Service.metrics().RejectedTooManyTokens, 1);
}

TEST(ParseServiceTest, QueueFullRejectsInsteadOfBlocking) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 1;
  Config.QueueCapacity = 2;
  Config.AutoStart = false; // nothing drains: the queue fills predictably
  ParseService Service(Config);

  auto F1 = Service.submit(makeReq(Bundle, "a", "1"));
  auto F2 = Service.submit(makeReq(Bundle, "b", "2"));
  auto F3 = Service.submit(makeReq(Bundle, "c", "3"));
  EXPECT_EQ(Service.queueDepth(), 2u);
  // The overflow future is already resolved — no blocking, no exception.
  EXPECT_EQ(F3.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(F3.get().Status, ParseStatus::QueueFull);

  Service.start();
  EXPECT_EQ(F1.get().Status, ParseStatus::Ok);
  EXPECT_EQ(F2.get().Status, ParseStatus::Ok);
  EXPECT_EQ(Service.metrics().RejectedQueueFull, 1);
}

TEST(ParseServiceTest, DeadlineExpiredWhileQueued) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 1;
  Config.AutoStart = false;
  ParseService Service(Config);

  ParseRequest Req = makeReq(Bundle, "stale", "1 + 2");
  Req.Deadline = std::chrono::milliseconds(1);
  auto F = Service.submit(std::move(Req));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Service.start();
  ParseResult R = F.get();
  EXPECT_EQ(R.Status, ParseStatus::DeadlineExceeded);
  EXPECT_NE(R.DiagText.find("while queued"), std::string::npos);
  EXPECT_EQ(Service.metrics().DeadlineExceeded, 1);
}

TEST(ParseServiceTest, DeadlineInterruptsARunningParse) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  // A long but trivial input: tokenization alone outlasts the 1ms
  // deadline, so expiry is detected by the parser's poll, mid-parse.
  std::string Input = "1";
  for (int I = 0; I < 200000; ++I)
    Input += " + 1";
  ServiceConfig Config;
  Config.Threads = 1;
  ParseService Service(Config);
  ParseRequest Req = makeReq(Bundle, "slow", std::move(Input));
  Req.Deadline = std::chrono::milliseconds(1);
  ParseResult R = Service.submit(std::move(Req)).get();
  EXPECT_EQ(R.Status, ParseStatus::DeadlineExceeded);
  EXPECT_NE(R.DiagText.find("deadline"), std::string::npos);
}

TEST(ParseServiceTest, ShutdownDrainsQueuedWorkAndRejectsLateSubmits) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 1;
  Config.AutoStart = false;
  ParseService Service(Config);

  auto F1 = Service.submit(makeReq(Bundle, "q1", "1"));
  Service.shutdown(); // workers never started; queued futures must resolve
  EXPECT_EQ(F1.get().Status, ParseStatus::ShuttingDown);
  EXPECT_EQ(Service.submit(makeReq(Bundle, "late", "1")).get().Status,
            ParseStatus::ShuttingDown);
  EXPECT_EQ(Service.metrics().RejectedShutdown, 2);
}

//===----------------------------------------------------------------------===//
// submitAsync and drain
//===----------------------------------------------------------------------===//

TEST(ParseServiceTest, SubmitAsyncRejectionsRunTheCallbackInline) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 1;
  Config.QueueCapacity = 1;
  Config.AutoStart = false; // nothing drains: overflow is deterministic
  ParseService Service(Config);

  bool FirstDone = false, SecondDone = false;
  ParseResult Overflow;
  Service.submitAsync(makeReq(Bundle, "a", "1"),
                      [&](ParseResult) { FirstDone = true; });
  Service.submitAsync(makeReq(Bundle, "b", "2"), [&](ParseResult R) {
    SecondDone = true;
    Overflow = std::move(R);
  });
  // The queue-full rejection resolved before submitAsync returned; the
  // accepted request has not run (no workers yet).
  EXPECT_FALSE(FirstDone);
  EXPECT_TRUE(SecondDone);
  EXPECT_EQ(Overflow.Status, ParseStatus::QueueFull);

  Service.drain(); // starts the pool and waits for "a"
  EXPECT_TRUE(FirstDone);
}

TEST(ParseServiceTest, DrainWaitsForQueuedAndInFlightCallbacks) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 2;
  Config.AutoStart = false; // queue everything first, then drain
  ParseService Service(Config);

  std::atomic<int> Done{0};
  for (int I = 0; I < 16; ++I)
    Service.submitAsync(makeReq(Bundle, std::to_string(I), "1 + 2 * 3"),
                        [&](ParseResult R) {
                          EXPECT_EQ(R.Status, ParseStatus::Ok);
                          ++Done;
                        });
  EXPECT_EQ(Done.load(), 0);
  Service.drain();
  // Quiescence means *callbacks ran*, not merely "queue empty": every
  // result was delivered before drain returned.
  EXPECT_EQ(Done.load(), 16);

  // Unlike shutdown, the service stays usable afterwards.
  EXPECT_EQ(Service.submit(makeReq(Bundle, "after", "4 * 5")).get().Status,
            ParseStatus::Ok);
  Service.drain(); // idempotent on an idle service
  EXPECT_EQ(Service.metrics().Ok, 17);
}

TEST(ParseServiceTest, DrainOnAnIdleOrFreshServiceReturnsImmediately) {
  ParseService Service(ServiceConfig{.Threads = 1, .AutoStart = false});
  Service.drain(); // never started, nothing queued: must not hang
  Service.drain();
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  EXPECT_EQ(Service.submit(makeReq(Bundle, "x", "1")).get().Status,
            ParseStatus::Ok);
}

//===----------------------------------------------------------------------===//
// Determinism and merged statistics across thread counts
//===----------------------------------------------------------------------===//

struct Outcome {
  ParseStatus Status;
  std::string Tree, Diags;
  int64_t Tokens;
  bool operator==(const Outcome &O) const {
    return Status == O.Status && Tree == O.Tree && Diags == O.Diags &&
           Tokens == O.Tokens;
  }
};

/// Runs \p Workload through a fresh service with \p Threads workers and
/// returns per-id outcomes plus the metrics snapshot.
std::map<std::string, Outcome>
runWorkload(const std::vector<ParseRequest> &Workload, int Threads,
            ServiceMetrics &MetricsOut) {
  ServiceConfig Config;
  Config.Threads = Threads;
  ParseService Service(Config);
  std::vector<std::future<ParseResult>> Futures;
  for (const ParseRequest &Req : Workload)
    Futures.push_back(Service.submit(ParseRequest(Req)));
  std::map<std::string, Outcome> Out;
  for (auto &F : Futures) {
    ParseResult R = F.get();
    Out[R.Id] = {R.Status, R.TreeText, R.DiagText, R.NumTokens};
  }
  Service.shutdown();
  MetricsOut = Service.metrics();
  return Out;
}

TEST(ParseServiceTest, CorpusIsByteIdenticalAcrossThreadCounts) {
  namespace fs = std::filesystem;
  std::string CorpusDir = std::string(LLSTAR_SOURCE_DIR) + "/tests/corpus";
  GrammarBundleCache Cache;
  std::vector<ParseRequest> Workload;

  std::vector<std::string> Paths;
  for (const auto &Entry : fs::directory_iterator(CorpusDir))
    if (Entry.path().extension() == ".g")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  ASSERT_FALSE(Paths.empty());

  for (const std::string &Path : Paths) {
    DiagnosticEngine Diags;
    auto Bundle = Cache.getFile(Path, Diags);
    ASSERT_TRUE(Bundle) << Path << "\n" << Diags.str();
    fuzz::SentenceSampler Sampler(Bundle->grammar(), /*Seed=*/2026);
    for (int I = 0; I < 8; ++I)
      Workload.push_back(
          makeReq(Bundle, Path + "#" + std::to_string(I),
                  fuzz::SentenceSampler::render(Sampler.sample())));
  }

  ServiceMetrics M1, M8;
  auto Single = runWorkload(Workload, 1, M1);
  auto Parallel = runWorkload(Workload, 8, M8);
  ASSERT_EQ(Single.size(), Parallel.size());
  for (const auto &[Id, Expected] : Single) {
    const Outcome &Got = Parallel.at(Id);
    EXPECT_TRUE(Expected == Got)
        << Id << ": 1-thread vs 8-thread results diverge\n"
        << "  status " << statusName(Expected.Status) << " vs "
        << statusName(Got.Status) << "\n  tree   " << Expected.Tree
        << "\n  vs     " << Got.Tree;
  }

  // The merged statistics are thread-count invariant: per-worker stats
  // merged via ParserStats::merge must equal the single-thread totals.
  EXPECT_EQ(M1.Ok, M8.Ok);
  EXPECT_EQ(M1.SyntaxErrors, M8.SyntaxErrors);
  EXPECT_EQ(M1.TokensParsed, M8.TokensParsed);
  EXPECT_EQ(M1.Parser.json(/*IncludeDecisions=*/true),
            M8.Parser.json(/*IncludeDecisions=*/true));
}

//===----------------------------------------------------------------------===//
// Error-recovering requests
//===----------------------------------------------------------------------===//

TEST(ParseServiceTest, RecoveredRequestsReturnPartialTreesAndErrors) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ServiceConfig Config;
  Config.Threads = 2;
  ParseService Service(Config);

  ParseRequest Req = makeReq(Bundle, "rec", "1 + + 2");
  Req.Recover = true;
  ParseResult R = Service.submit(std::move(Req)).get();
  EXPECT_EQ(R.Status, ParseStatus::Recovered);
  // A partial tree with error leaves came back, not an empty failure.
  EXPECT_NE(R.TreeText.find("(error"), std::string::npos) << R.TreeText;
  ASSERT_FALSE(R.Errors.empty());
  for (const Diagnostic &D : R.Errors)
    EXPECT_EQ(D.Severity, DiagSeverity::Error);
  // Structured errors come sorted by source position.
  for (size_t I = 1; I < R.Errors.size(); ++I) {
    const SourceLocation &A = R.Errors[I - 1].Loc, &B = R.Errors[I].Loc;
    EXPECT_TRUE(A.Line < B.Line || (A.Line == B.Line && A.Column <= B.Column));
  }

  // The identical input without Recover stays a plain failure.
  ParseResult Strict = Service.submit(makeReq(Bundle, "syn", "1 + + 2")).get();
  EXPECT_EQ(Strict.Status, ParseStatus::SyntaxError);

  Service.shutdown();
  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.Recovered, 1);
  EXPECT_EQ(M.SyntaxErrors, 1);
  EXPECT_EQ(M.Completed, 2);
  EXPECT_NE(M.json().find("\"recovered\":1"), std::string::npos);
}

TEST(ParseServiceTest, RepairCountersMergeAcrossWorkers) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);

  // Ground truth: one single-threaded recovering parse per input, merged
  // by hand with ParserStats::merge.
  const char *Inputs[] = {"1 + + 2", "1 2",     "( 1",  "1 + 2 +",
                          "* 3",     "1 + 2",   ") ) )", "( ( 1",
                          "2 * * 2", "1 1 1 1", "(",     "3 - - 3"};
  auto AG = analyzeOrFail(ExprGrammar);
  ASSERT_TRUE(AG);
  ParserStats Expected;
  for (const char *Input : Inputs) {
    TokenStream Stream = lexOrFail(*AG, Input);
    DiagnosticEngine Diags;
    ParserOptions Opts;
    Opts.Memoize = AG->grammar().Options.Memoize;
    Opts.Recover = true;
    LLStarParser P(*AG, Stream, nullptr, Diags, Opts);
    P.parse();
    Expected.merge(P.stats());
  }

  // 8 workers chew the same inputs; merged repair counters must match the
  // single-threaded totals exactly, whatever the scheduling.
  ServiceConfig Config;
  Config.Threads = 8;
  ParseService Service(Config);
  std::vector<std::future<ParseResult>> Futures;
  for (const char *Input : Inputs) {
    ParseRequest Req = makeReq(Bundle, Input, Input, /*WantTree=*/false);
    Req.Recover = true;
    Futures.push_back(Service.submit(std::move(Req)));
  }
  for (auto &F : Futures)
    F.get();
  Service.shutdown();

  ServiceMetrics M = Service.metrics();
  EXPECT_EQ(M.Parser.TokensDeleted, Expected.TokensDeleted);
  EXPECT_EQ(M.Parser.TokensInserted, Expected.TokensInserted);
  EXPECT_EQ(M.Parser.PanicSyncs, Expected.PanicSyncs);
  EXPECT_EQ(M.Parser.SyntaxErrors, Expected.SyntaxErrors);
  EXPECT_GT(Expected.TokensDeleted + Expected.TokensInserted +
                Expected.PanicSyncs,
            0);
}

TEST(ParseServiceTest, MetricsJsonIsWellFormed) {
  GrammarBundleCache Cache;
  auto Bundle = bundleOrFail(Cache, ExprGrammar);
  ParseService Service(ServiceConfig{.Threads = 2});
  Service.submit(makeReq(Bundle, "a", "1 + 2")).get();
  Service.shutdown();
  std::string Json = Service.metrics().json(/*IncludeDecisions=*/true);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
  for (const char *Key :
       {"\"threads\"", "\"submitted\"", "\"ok\"", "\"tokensParsed\"",
        "\"parser\"", "\"decisionEvents\"", "\"decisions\""})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << " missing";
}

} // namespace
