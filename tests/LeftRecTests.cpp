//===- tests/LeftRecTests.cpp - Left-recursion rewrite tests --------------===//
//
// The paper's Section 1.1 extension: immediate left recursion rewritten to
// precedence-predicated loops.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "grammar/GrammarParser.h"
#include "leftrec/LeftRecursionRewriter.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

// The paper's expression rule: e : e '*' e | e '+' e | INT ;
const char *PaperExprGrammar = R"(
grammar E;
e : e '*' e | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";

TEST(LeftRec, RewriteMarksRule) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(PaperExprGrammar, Diags, /*Validate=*/false);
  ASSERT_TRUE(G) << Diags.str();
  EXPECT_EQ(rewriteLeftRecursion(*G, Diags), 1);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  EXPECT_TRUE(G->rule(0).IsPrecedenceRule);
  EXPECT_EQ(G->rule(0).Alts.size(), 1u);
  // And the rewritten grammar validates (no left recursion remains).
  G->validate(Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
}

TEST(LeftRec, PaperExamplePrecedence) {
  auto AG = analyzeOrFail(PaperExprGrammar);
  ASSERT_TRUE(AG);
  // '*' binds tighter than '+' (alternative order encodes precedence).
  EXPECT_EQ(parseToString(*AG, "1+2*3", "e"), "(e 1 + (e 2 * (e 3)))");
  EXPECT_EQ(parseToString(*AG, "1*2+3", "e"), "(e 1 * (e 2) + (e 3))");
  // Left associativity: both ops continue the same loop.
  EXPECT_EQ(parseToString(*AG, "1+2+3", "e"), "(e 1 + (e 2) + (e 3))");
  EXPECT_EQ(parseToString(*AG, "7", "e"), "(e 7)");
}

TEST(LeftRec, ParenthesizedPrimaries) {
  auto AG = analyzeOrFail(R"(
grammar E;
e : e '*' e | e '+' e | '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "(1+2)*3", "e"),
            "(e ( (e 1 + (e 2)) ) * (e 3))");
  EXPECT_TRUE(parses(*AG, "((1))*((2+3))", "e"));
}

TEST(LeftRec, RightAssociativity) {
  auto AG = analyzeOrFail(R"(
grammar E;
e : {assoc=right} e '^' e | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  // 2^3^4 must nest to the right: 2^(3^4).
  EXPECT_EQ(parseToString(*AG, "2^3^4", "e"), "(e 2 ^ (e 3 ^ (e 4)))");
  // And ^ still binds tighter than +.
  EXPECT_EQ(parseToString(*AG, "1+2^3", "e"), "(e 1 + (e 2 ^ (e 3)))");
}

TEST(LeftRec, PrefixOperators) {
  // Alternative order encodes precedence, highest first: unary minus
  // listed before '+' binds tighter, so -1+2 == (-1)+2.
  auto AG = analyzeOrFail(R"(
grammar E;
e : '-' e | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "-1+2", "e"), "(e - (e 1) + (e 2))");
  EXPECT_EQ(parseToString(*AG, "--3", "e"), "(e - (e - (e 3)))");

  // And the converse: '-' listed after '+' binds looser, so the operand of
  // '-' swallows the addition.
  auto AG2 = analyzeOrFail(R"(
grammar E;
e : e '+' e | '-' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG2);
  EXPECT_EQ(parseToString(*AG2, "-1+2", "e"), "(e - (e 1 + (e 2)))");
}

TEST(LeftRec, SuffixOperators) {
  auto AG = analyzeOrFail(R"(
grammar E;
e : e '!' | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "3!", "e"), "(e 3 !)");
  // Postfix binds tighter than '+'.
  EXPECT_EQ(parseToString(*AG, "1+2!", "e"), "(e 1 + (e 2 !))");
  EXPECT_EQ(parseToString(*AG, "1!+2", "e"), "(e 1 ! + (e 2))");
}

TEST(LeftRec, TernaryStyleMix) {
  // Mixed binary/prefix/suffix in one rule, as the paper claims the
  // mechanism supports ("sufficiently general to support suffix, prefix,
  // binary, and ternary operators").
  auto AG = analyzeOrFail(R"(
grammar E;
e : e '?' e ':' e | e '+' e | '-' e | e '!' | '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "1?2:3", "e"));
  EXPECT_TRUE(parses(*AG, "1+2?3:-4!", "e"));
  EXPECT_TRUE(parses(*AG, "(1?2:3)+4", "e"));
}

TEST(LeftRec, EvaluatesCorrectlyViaTreeWalk) {
  auto AG = analyzeOrFail(R"(
grammar E;
e : e '*' e | e '+' e | '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);

  // Evaluate the loop-form parse tree: first child is the head operand,
  // then (op, operand) pairs applied left-to-right.
  std::function<long(const ParseTree *)> Eval =
      [&](const ParseTree *N) -> long {
    if (N->isToken())
      return std::strtol(N->token().Text.c_str(), nullptr, 10);
    size_t I = 0;
    long V = 0;
    // Parenthesized head: "(" e ")".
    if (N->child(0)->isToken() && N->child(0)->token().Text == "(") {
      V = Eval(N->child(1));
      I = 3;
    } else {
      V = Eval(N->child(0));
      I = 1;
    }
    while (I + 1 < N->numChildren() + 1 && I < N->numChildren()) {
      const std::string &Op = N->child(I)->token().Text;
      long R = Eval(N->child(I + 1));
      V = Op == "*" ? V * R : V + R;
      I += 2;
    }
    return V;
  };

  auto Check = [&](const std::string &Input, long Expected) {
    TokenStream Stream = lexOrFail(*AG, Input);
    DiagnosticEngine Diags;
    LLStarParser P(*AG, Stream, nullptr, Diags);
    auto Tree = P.parse("e");
    ASSERT_TRUE(P.ok()) << Diags.str();
    EXPECT_EQ(Eval(Tree->child(0) ? Tree.get() : Tree.get()), Expected)
        << Input;
  };

  Check("1+2*3", 7);
  Check("(1+2)*3", 9);
  Check("2*3+4*5", 26);
  Check("1+(2+3)*4", 21);
}

TEST(LeftRec, BareSelfLoopRejected) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText("grammar T; a : a | B ; B:'b';", Diags,
                            /*Validate=*/false);
  ASSERT_TRUE(G);
  rewriteLeftRecursion(*G, Diags);
  EXPECT_TRUE(Diags.hasErrors());
  EXPECT_TRUE(Diags.contains("bare self-reference")) << Diags.str();
}

TEST(LeftRec, NonLeftRecursiveRulesUntouched) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(R"(
grammar T;
a : B a | B ;
B : 'b' ;
)",
                            Diags, /*Validate=*/false);
  ASSERT_TRUE(G);
  EXPECT_EQ(rewriteLeftRecursion(*G, Diags), 0);
  EXPECT_FALSE(G->rule(0).IsPrecedenceRule);
}

TEST(LeftRec, AnalyzePipelineHandlesItAutomatically) {
  // analyzeGrammarText must accept left-recursive input end to end.
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(PaperExprGrammar, Diags);
  ASSERT_TRUE(AG) << Diags.str();
  EXPECT_TRUE(AG->grammar().rule(0).IsPrecedenceRule);
}

} // namespace
