//===- tests/DaemonTests.cpp - llstard over the wire ----------------------===//
//
// Coverage for src/net/Daemon.h + LlstarClient.h: real sockets on an
// ephemeral loopback port (port 0 — tests never collide), driven through
// the client library. The headline suite is conformance: daemon responses
// must be byte-identical to in-process ParseService results — trees,
// diagnostics, structured recovery errors, and the stats JSON (modulo the
// wall-clock parseMillis fields) — across the fuzz-grammar corpus in both
// interpreter and compiled modes. The rest pins down the daemon's
// concurrency contracts deterministically: request-id pipelining with
// out-of-order completion, per-connection and queue backpressure, graceful
// drain, version negotiation, and robustness against garbage bytes. All of
// it runs under the TSan CI job; keep it free of intentional races.
//
//===----------------------------------------------------------------------===//

#include "CompiledManifest.h"
#include "fuzz/SentenceSampler.h"
#include "incremental/IncrementalSession.h"
#include "net/Daemon.h"
#include "net/LlstarClient.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

using namespace llstar;
using namespace llstar::net;

namespace {

const char *ExprGrammar = R"(
grammar Expr;
s    : expr EOF ;
expr : term (('+' | '-') term)* ;
term : atom ('*' atom)* ;
atom : INT | '(' expr ')' ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

/// Same language plus division — different bytes, different content hash;
/// the hot-reload test's "new version" of Expr.
const char *ExprGrammarV2 = R"(
grammar Expr;
s    : expr EOF ;
expr : term (('+' | '-') term)* ;
term : atom (('*' | '/') atom)* ;
atom : INT | '(' expr ')' ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

std::vector<std::string> corpusFiles() {
  namespace fs = std::filesystem;
  std::vector<std::string> Paths;
  for (const auto &Entry : fs::directory_iterator(
           std::string(LLSTAR_SOURCE_DIR) + "/tests/corpus"))
    if (Entry.path().extension() == ".g")
      Paths.push_back(Entry.path().string());
  std::sort(Paths.begin(), Paths.end());
  return Paths;
}

std::string readFileOrFail(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  EXPECT_TRUE(In) << Path;
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return Buffer.str();
}

/// Blanks every `"parseMillis":<number>` value — the only wall-clock-
/// dependent fields in the metrics JSON.
std::string stripParseMillis(std::string Json) {
  const std::string Key = "\"parseMillis\":";
  size_t At = 0;
  while ((At = Json.find(Key, At)) != std::string::npos) {
    size_t Begin = At + Key.size();
    size_t End = Begin;
    while (End < Json.size() &&
           (std::isdigit(uint8_t(Json[End])) || Json[End] == '.' ||
            Json[End] == '-' || Json[End] == '+' || Json[End] == 'e' ||
            Json[End] == 'E'))
      ++End;
    Json.replace(Begin, End - Begin, "X");
    At = Begin;
  }
  return Json;
}

/// A started daemon + connected client, torn down in order.
struct Harness {
  explicit Harness(DaemonConfig Config = {}) : Server(std::move(Config)) {
    std::string Error;
    Ok = Server.start(&Error);
    EXPECT_TRUE(Ok) << Error;
    if (Ok)
      Ok = Client.connect("127.0.0.1", Server.port(), &Error);
    EXPECT_TRUE(Ok) << Error;
  }
  ~Harness() {
    Client.close();
    Server.stop();
  }
  Daemon Server;
  LlstarClient Client;
  bool Ok = false;
};

uint64_t loadOrFail(LlstarClient &Client, std::string_view Bytes) {
  wire::LoadBundleReply Loaded;
  std::string Err;
  EXPECT_TRUE(Client.loadBundle(Bytes, Loaded, &Err)) << Err;
  return Loaded.Hash;
}

//===----------------------------------------------------------------------===//
// Basic round-trip
//===----------------------------------------------------------------------===//

TEST(DaemonTest, LoadsAGrammarAndParsesOverTheWire) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);
  EXPECT_NE(Hash, 0u);

  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.WantTree = true;
  Args.Input = "1 + 2 * 3";
  wire::Message Reply;
  std::string Err;
  ASSERT_TRUE(H.Client.parse(Args, /*Recover=*/false, Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ParseReply);
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
  EXPECT_EQ(Reply.Parse.NumTokens, 5);
  EXPECT_NE(Reply.Parse.TreeText.find("(expr"), std::string::npos)
      << Reply.Parse.TreeText;

  // Hash 0 addresses the default (most recently loaded) bundle.
  Args.BundleHash = 0;
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));

  // Re-loading identical bytes is a cache hit with the same hash.
  wire::LoadBundleReply Again;
  ASSERT_TRUE(H.Client.loadBundle(ExprGrammar, Again, &Err)) << Err;
  EXPECT_EQ(Again.Hash, Hash);
  EXPECT_EQ(Again.Cached, 1);

  DaemonCounters C = H.Server.counters();
  EXPECT_EQ(C.ConnectionsAccepted, 1);
  EXPECT_EQ(C.BundlesLoaded, 1);
  EXPECT_EQ(C.ProtocolErrors, 0);
}

TEST(DaemonTest, UnknownBundleHashAndBadBundleBytesAreCleanErrors) {
  Harness H;
  ASSERT_TRUE(H.Ok);

  // No bundle loaded at all: hash 0 has no default to fall back to.
  wire::ParseArgs Args;
  Args.Input = "1";
  wire::Message Reply;
  std::string Err;
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::UnknownBundle);

  Args.BundleHash = 74565;
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::UnknownBundle);
  EXPECT_NE(Reply.Error.Message.find("74565"), std::string::npos)
      << Reply.Error.Message;

  // Unloadable bytes produce BadBundle with the loader's diagnostics.
  wire::LoadBundleReply Loaded;
  EXPECT_FALSE(H.Client.loadBundle("grammar Broken; s : ", Loaded, &Err));
  EXPECT_NE(Err.find("bad-bundle"), std::string::npos) << Err;

  // The connection is still healthy afterwards.
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);
  Args.BundleHash = Hash;
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
}

//===----------------------------------------------------------------------===//
// Over-the-wire conformance: byte-identical to the in-process service
//===----------------------------------------------------------------------===//

class DaemonConformanceTest : public ::testing::TestWithParam<bool> {};

TEST_P(DaemonConformanceTest, CorpusResultsAreByteIdenticalToInProcess) {
  const bool UseCompiled = GetParam();
  if (UseCompiled)
    compiled::registerShippedGrammars();

  ServiceConfig SC;
  SC.Threads = 2;
  SC.UseCompiled = UseCompiled;

  // The reference: the exact same workload through an in-process service.
  ParseService Reference(SC);
  GrammarBundleCache ReferenceCache;

  DaemonConfig DC;
  DC.Service = SC;
  Harness H(DC);
  ASSERT_TRUE(H.Ok);

  std::vector<std::string> Paths = corpusFiles();
  ASSERT_FALSE(Paths.empty());
  std::string Err;
  for (const std::string &Path : Paths) {
    std::string Bytes = readFileOrFail(Path);
    DiagnosticEngine Diags;
    auto Bundle = ReferenceCache.get(Bytes, Diags);
    ASSERT_TRUE(Bundle) << Path << "\n" << Diags.str();

    wire::LoadBundleReply Loaded;
    ASSERT_TRUE(H.Client.loadBundle(Bytes, Loaded, &Err)) << Path << ": "
                                                          << Err;
    // The daemon keys bundles by the same content hash the cache uses.
    ASSERT_EQ(Loaded.Hash, Bundle->contentHash()) << Path;
    ASSERT_EQ(Loaded.Name, Bundle->name());

    fuzz::SentenceSampler Sampler(Bundle->grammar(), /*Seed=*/2026);
    for (int I = 0; I < 6; ++I) {
      std::string Input = fuzz::SentenceSampler::render(Sampler.sample());
      bool Recover = I % 2 == 1;

      // The daemon names requests after the wire request id; mirror that
      // so even id-bearing text would compare equal.
      uint64_t WireId = H.Client.nextRequestId();
      ParseRequest Req;
      Req.Bundle = Bundle;
      Req.Id = std::to_string(WireId);
      Req.Input = Input;
      Req.WantTree = true;
      Req.Recover = Recover;
      ParseResult Want = Reference.submit(std::move(Req)).get();

      wire::ParseArgs Args;
      Args.BundleHash = Loaded.Hash;
      Args.WantTree = true;
      Args.Input = Input;
      wire::Message Got;
      ASSERT_TRUE(H.Client.parse(Args, Recover, Got, &Err))
          << Path << "#" << I << ": " << Err;
      ASSERT_EQ(Got.Hdr.Op, Recover ? wire::Opcode::ParseRecoverReply
                                    : wire::Opcode::ParseReply)
          << Path << "#" << I;

      const wire::ParseReply &P = Got.Parse;
      EXPECT_EQ(ParseStatus(P.Status), Want.Status) << Path << "#" << I;
      EXPECT_EQ(P.TreeText, Want.TreeText) << Path << "#" << I;
      EXPECT_EQ(P.DiagText, Want.DiagText) << Path << "#" << I;
      EXPECT_EQ(P.NumTokens, Want.NumTokens) << Path << "#" << I;
      EXPECT_EQ(P.TreeNodes, Want.TreeNodes) << Path << "#" << I;
      ASSERT_EQ(P.Errors.size(), Want.Errors.size()) << Path << "#" << I;
      for (size_t E = 0; E < P.Errors.size(); ++E) {
        EXPECT_EQ(DiagSeverity(P.Errors[E].Severity),
                  Want.Errors[E].Severity);
        EXPECT_EQ(P.Errors[E].Line, Want.Errors[E].Loc.Line);
        EXPECT_EQ(P.Errors[E].Column, Want.Errors[E].Loc.Column);
        EXPECT_EQ(P.Errors[E].Message, Want.Errors[E].Message);
      }
    }
  }

  // The stats JSON agrees too: identical workloads yield identical merged
  // counters and ParserStats; only the parseMillis wall times may differ.
  std::string WireJson;
  ASSERT_TRUE(H.Client.stats(/*IncludeDecisions=*/true, WireJson, &Err))
      << Err;
  std::string ReferenceJson = Reference.metrics().json(true);
  EXPECT_EQ(stripParseMillis(WireJson), stripParseMillis(ReferenceJson));
}

INSTANTIATE_TEST_SUITE_P(InterpreterAndCompiled, DaemonConformanceTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "Compiled" : "Interpreter";
                         });

TEST(DaemonTest, StatsReplyMatchesTheServiceMetricsSnapshot) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);
  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "1 + 2";
  wire::Message Reply;
  std::string Err;
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;

  // Idle at snapshot time, same service: the strings are fully identical,
  // wall-clock fields included.
  std::string WireJson;
  ASSERT_TRUE(H.Client.stats(true, WireJson, &Err)) << Err;
  EXPECT_EQ(WireJson, H.Server.service().metrics().json(true));
  EXPECT_NE(WireJson.find("\"ok\":3"), std::string::npos) << WireJson;
}

//===----------------------------------------------------------------------===//
// Pipelining, backpressure, drain
//===----------------------------------------------------------------------===//

TEST(DaemonTest, PipelinedRepliesCompleteOutOfSubmissionOrder) {
  DaemonConfig DC;
  DC.Service.Threads = 2;
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  // A parse that takes real work, then a trivial one: with two workers the
  // trivial reply overtakes the big one on the same connection.
  std::string Big = "1";
  for (int I = 0; I < 120000; ++I)
    Big += " + 1";
  wire::ParseArgs BigArgs;
  BigArgs.BundleHash = Hash;
  BigArgs.Input = Big;
  wire::ParseArgs TinyArgs;
  TinyArgs.BundleHash = Hash;
  TinyArgs.Input = "7";

  std::string Err;
  uint64_t BigId = H.Client.submitParse(BigArgs, false, &Err);
  ASSERT_NE(BigId, 0u) << Err;
  uint64_t TinyId = H.Client.submitParse(TinyArgs, false, &Err);
  ASSERT_NE(TinyId, 0u) << Err;

  wire::Message First;
  ASSERT_TRUE(H.Client.waitAny(First, &Err)) << Err;
  EXPECT_EQ(First.Hdr.RequestId, TinyId)
      << "trivial request did not overtake the expensive one";
  wire::Message Second;
  ASSERT_TRUE(H.Client.waitAny(Second, &Err)) << Err;
  EXPECT_EQ(Second.Hdr.RequestId, BigId);
  EXPECT_EQ(Second.Parse.Status, uint8_t(ParseStatus::Ok));

  // wait(id) out of arrival order also works: submit two, collect in
  // reverse.
  uint64_t A = H.Client.submitParse(TinyArgs, false, &Err);
  uint64_t B = H.Client.submitParse(TinyArgs, false, &Err);
  wire::Message RB, RA;
  ASSERT_TRUE(H.Client.wait(B, RB, &Err)) << Err;
  ASSERT_TRUE(H.Client.wait(A, RA, &Err)) << Err;
  EXPECT_EQ(RA.Hdr.RequestId, A);
  EXPECT_EQ(RB.Hdr.RequestId, B);
}

TEST(DaemonTest, ServiceQueueBackpressureIsDeterministic) {
  DaemonConfig DC;
  DC.Service.Threads = 1;
  DC.Service.QueueCapacity = 3;
  DC.Service.AutoStart = false; // nothing drains: the queue fills exactly
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "1 + 2";
  std::string Err;
  std::vector<uint64_t> Ids;
  for (int I = 0; I < 5; ++I) {
    uint64_t Id = H.Client.submitParse(Args, false, &Err);
    ASSERT_NE(Id, 0u) << Err;
    Ids.push_back(Id);
  }

  // The reader handles records sequentially, so exactly requests 4 and 5
  // bounce — inline, in submission order, while 1-3 sit in the queue.
  for (size_t Overflow = 3; Overflow < 5; ++Overflow) {
    wire::Message Reply;
    ASSERT_TRUE(H.Client.waitAny(Reply, &Err)) << Err;
    EXPECT_EQ(Reply.Hdr.RequestId, Ids[Overflow]);
    EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::QueueFull));
  }

  // Releasing the workers completes the three accepted requests.
  H.Server.service().start();
  for (size_t Accepted = 0; Accepted < 3; ++Accepted) {
    wire::Message Reply;
    ASSERT_TRUE(H.Client.wait(Ids[Accepted], Reply, &Err)) << Err;
    EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
  }
  EXPECT_EQ(H.Server.service().metrics().RejectedQueueFull, 2);
}

TEST(DaemonTest, PerConnectionPipelineCapBouncesDeterministically) {
  DaemonConfig DC;
  DC.MaxInFlightPerConn = 2;
  DC.Service.Threads = 1;
  DC.Service.AutoStart = false; // keep the first two requests in flight
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "3 * 4";
  std::string Err;
  uint64_t Id1 = H.Client.submitParse(Args, false, &Err);
  uint64_t Id2 = H.Client.submitParse(Args, false, &Err);
  uint64_t Id3 = H.Client.submitParse(Args, false, &Err);

  // The third request exceeded the per-connection cap: a QueueFull parse
  // reply naming the limit, while 1 and 2 stay pending.
  wire::Message Reply;
  ASSERT_TRUE(H.Client.wait(Id3, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::QueueFull));
  EXPECT_NE(Reply.Parse.DiagText.find("pipeline limit of 2"),
            std::string::npos)
      << Reply.Parse.DiagText;
  EXPECT_EQ(H.Server.counters().RejectedPipelineCap, 1);

  H.Server.service().start();
  ASSERT_TRUE(H.Client.wait(Id1, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
  ASSERT_TRUE(H.Client.wait(Id2, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
}

TEST(DaemonTest, GracefulDrainFinishesInFlightWorkFirst) {
  DaemonConfig DC;
  DC.Service.Threads = 2;
  DC.Service.AutoStart = false; // queue work, then drain releases it
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "(1 + 2) * 3";
  std::string Err;
  uint64_t Id1 = H.Client.submitParse(Args, false, &Err);
  uint64_t Id2 = H.Client.submitParse(Args, false, &Err);
  ASSERT_NE(Id1, 0u);
  ASSERT_NE(Id2, 0u);

  // Drain starts the pool, finishes both queued parses, and only then
  // answers: on this connection both parse replies precede the DrainReply.
  ASSERT_TRUE(H.Client.sendRecord(wire::encodeDrainArgs(99), &Err)) << Err;
  wire::Message First, Second, Third;
  ASSERT_TRUE(H.Client.waitAny(First, &Err)) << Err;
  ASSERT_TRUE(H.Client.waitAny(Second, &Err)) << Err;
  ASSERT_TRUE(H.Client.waitAny(Third, &Err)) << Err;
  EXPECT_NE(First.Hdr.Op, wire::Opcode::DrainReply);
  EXPECT_NE(Second.Hdr.Op, wire::Opcode::DrainReply);
  EXPECT_EQ(First.Parse.Status, uint8_t(ParseStatus::Ok));
  EXPECT_EQ(Second.Parse.Status, uint8_t(ParseStatus::Ok));
  EXPECT_EQ(Third.Hdr.Op, wire::Opcode::DrainReply);
  EXPECT_EQ(Third.Hdr.RequestId, 99u);
  EXPECT_TRUE(H.Server.draining());

  // New work is refused deterministically; stats stay observable.
  wire::Message Refused;
  ASSERT_TRUE(H.Client.parse(Args, false, Refused, &Err)) << Err;
  ASSERT_EQ(Refused.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Refused.Error.Code, wire::WireError::Draining);
  std::string Json;
  EXPECT_TRUE(H.Client.stats(false, Json, &Err)) << Err;
  EXPECT_EQ(H.Server.counters().RejectedDraining, 1);

  // New connections are turned away while draining.
  LlstarClient Late;
  ASSERT_TRUE(Late.connect("127.0.0.1", H.Server.port(), &Err)) << Err;
  wire::Message Nothing;
  EXPECT_FALSE(Late.parse(Args, false, Nothing, &Err));
}

//===----------------------------------------------------------------------===//
// Protocol edges
//===----------------------------------------------------------------------===//

TEST(DaemonTest, VersionNegotiationNamesTheSupportedVersion) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  // Handcraft a version-7 parse request.
  std::string Record;
  wire::putU32(Record, wire::Magic);
  wire::putU16(Record, 7);
  wire::putU8(Record, uint8_t(wire::Opcode::Parse));
  wire::putU8(Record, 0);
  wire::putU64(Record, 31337);
  std::string Err;
  ASSERT_TRUE(H.Client.sendRecord(Record, &Err)) << Err;
  wire::Message Reply;
  ASSERT_TRUE(H.Client.readReply(Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::BadVersion);
  EXPECT_EQ(Reply.Hdr.RequestId, 31337u); // the id is echoed for pairing
  EXPECT_NE(Reply.Error.Message.find("version 1"), std::string::npos)
      << Reply.Error.Message;

  // The connection survives: correctly-versioned requests still work.
  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "5";
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
}

TEST(DaemonTest, DuplicateInFlightRequestIdsAreRejected) {
  DaemonConfig DC;
  DC.Service.Threads = 1;
  DC.Service.AutoStart = false; // the first id stays in flight
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.Input = "6 * 7";
  std::string Err;
  ASSERT_TRUE(
      H.Client.sendRecord(wire::encodeParseArgs(500, Args, false), &Err));
  ASSERT_TRUE(
      H.Client.sendRecord(wire::encodeParseArgs(500, Args, false), &Err));

  wire::Message Dup;
  ASSERT_TRUE(H.Client.readReply(Dup, &Err)) << Err;
  ASSERT_EQ(Dup.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Dup.Error.Code, wire::WireError::DuplicateRequestId);
  EXPECT_EQ(Dup.Hdr.RequestId, 500u);

  // The original request is unharmed; its id is reusable after completion.
  H.Server.service().start();
  wire::Message Done;
  ASSERT_TRUE(H.Client.readReply(Done, &Err)) << Err;
  EXPECT_EQ(Done.Hdr.RequestId, 500u);
  EXPECT_EQ(Done.Parse.Status, uint8_t(ParseStatus::Ok));
  ASSERT_TRUE(
      H.Client.sendRecord(wire::encodeParseArgs(500, Args, false), &Err));
  ASSERT_TRUE(H.Client.readReply(Done, &Err)) << Err;
  EXPECT_EQ(Done.Parse.Status, uint8_t(ParseStatus::Ok));
}

TEST(DaemonTest, BadMagicAnswersOnceAndHangsUp) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  std::string Err;
  ASSERT_TRUE(H.Client.sendRecord("this is not LLSP at all", &Err));
  wire::Message Reply;
  ASSERT_TRUE(H.Client.readReply(Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::BadMagic);
  // Then EOF: the daemon refuses to keep decoding a non-LLSP stream.
  EXPECT_FALSE(H.Client.readReply(Reply, &Err));

  // The daemon itself is fine — fresh connections work.
  LlstarClient Fresh;
  ASSERT_TRUE(Fresh.connect("127.0.0.1", H.Server.port(), &Err)) << Err;
  wire::LoadBundleReply Loaded;
  EXPECT_TRUE(Fresh.loadBundle(ExprGrammar, Loaded, &Err)) << Err;
  EXPECT_GE(H.Server.counters().ProtocolErrors, 1);
}

TEST(DaemonTest, OversizedFramesAreRefusedWithoutBallooningMemory) {
  DaemonConfig DC;
  DC.MaxFragmentBytes = 1024;
  DC.MaxRecordBytes = 4096;
  Harness H(DC);
  ASSERT_TRUE(H.Ok);

  // A fragment header claiming 1 MiB against a 1 KiB limit.
  std::string Raw;
  wire::putU32(Raw, (1u << 20) | 0x80000000u);
  std::string Err;
  ASSERT_TRUE(H.Client.sendRaw(Raw, &Err));
  wire::Message Reply;
  ASSERT_TRUE(H.Client.readReply(Reply, &Err)) << Err;
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::FrameTooLarge);
  EXPECT_FALSE(H.Client.readReply(Reply, &Err)); // connection closed
}

TEST(DaemonTest, GarbageBytesNeverTakeTheDaemonDown) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  std::string Err;
  std::mt19937_64 Rng(0xDAE11013);

  // Raw noise across reconnects: most of it violates framing, which ends
  // that connection; the daemon must shrug all of it off.
  for (int Iter = 0; Iter < 64; ++Iter) {
    LlstarClient Noisy;
    ASSERT_TRUE(Noisy.connect("127.0.0.1", H.Server.port(), &Err)) << Err;
    std::string Junk(1 + Rng() % 192, 0);
    for (char &C : Junk)
      C = char(Rng() & 0xFF);
    Noisy.sendRaw(Junk, &Err); // outcome irrelevant; survival matters
  }

  // Well-framed records with hostile contents on one connection: every
  // record gets exactly one reply (almost always an error), and the
  // connection keeps going — random bodies cannot produce valid magic.
  LlstarClient Hostile;
  ASSERT_TRUE(Hostile.connect("127.0.0.1", H.Server.port(), &Err)) << Err;
  const wire::Opcode Requests[] = {wire::Opcode::Parse,
                                   wire::Opcode::ParseRecover,
                                   wire::Opcode::LoadBundle,
                                   wire::Opcode::Stats, wire::Opcode::Drain};
  for (int Iter = 0; Iter < 128; ++Iter) {
    std::string Record;
    wire::putU32(Record, wire::Magic);
    wire::putU16(Record, wire::ProtocolVersion);
    wire::putU8(Record, uint8_t(Requests[Rng() % 4])); // no Drain: see below
    wire::putU8(Record, uint8_t(Rng() & 0xFF));
    wire::putU64(Record, Rng());
    size_t BodyLen = Rng() % 64;
    for (size_t B = 0; B < BodyLen; ++B)
      Record += char(Rng() & 0xFF);
    ASSERT_TRUE(Hostile.sendRecord(Record, &Err)) << Err;
    wire::Message Reply;
    ASSERT_TRUE(Hostile.readReply(Reply, &Err)) << "iter " << Iter << ": "
                                                << Err;
  }

  // After the abuse, an honest client still gets full service.
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);
  wire::ParseArgs Args;
  Args.BundleHash = Hash;
  Args.WantTree = true;
  Args.Input = "(8 - 2) * 3";
  wire::Message Reply;
  ASSERT_TRUE(H.Client.parse(Args, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
}

//===----------------------------------------------------------------------===//
// Hot bundle reload
//===----------------------------------------------------------------------===//

TEST(DaemonTest, HotReloadKeysBundlesByContentHash) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  std::string Err;

  uint64_t V1 = loadOrFail(H.Client, ExprGrammar);
  wire::ParseArgs Division;
  Division.Input = "8 / 2"; // only V2 accepts division
  wire::Message Reply;
  ASSERT_TRUE(H.Client.parse(Division, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::LexError));

  // Changed grammar bytes: a different hash, and the new default.
  wire::LoadBundleReply V2Loaded;
  ASSERT_TRUE(H.Client.loadBundle(ExprGrammarV2, V2Loaded, &Err)) << Err;
  EXPECT_NE(V2Loaded.Hash, V1);
  EXPECT_EQ(V2Loaded.Cached, 0);
  ASSERT_TRUE(H.Client.parse(Division, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));

  // The old version remains addressable by its hash — in-flight or
  // pinned-version clients are not broken by a reload.
  wire::ParseArgs OldStyle;
  OldStyle.BundleHash = V1;
  OldStyle.Input = "8 * 2";
  ASSERT_TRUE(H.Client.parse(OldStyle, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::Ok));
  OldStyle.Input = "8 / 2";
  ASSERT_TRUE(H.Client.parse(OldStyle, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::LexError));

  // Rolling back is a cache hit on the original hash.
  wire::LoadBundleReply Rollback;
  ASSERT_TRUE(H.Client.loadBundle(ExprGrammar, Rollback, &Err)) << Err;
  EXPECT_EQ(Rollback.Hash, V1);
  EXPECT_EQ(Rollback.Cached, 1);
  wire::ParseArgs DefaultNow;
  DefaultNow.Input = "8 / 2";
  ASSERT_TRUE(H.Client.parse(DefaultNow, false, Reply, &Err)) << Err;
  EXPECT_EQ(Reply.Parse.Status, uint8_t(ParseStatus::LexError));
}

//===----------------------------------------------------------------------===//
// Concurrent connections
//===----------------------------------------------------------------------===//

TEST(DaemonTest, ManyConnectionsParseConcurrently) {
  DaemonConfig DC;
  DC.Service.Threads = 2;
  Harness H(DC);
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int C = 0; C < 6; ++C)
    Threads.emplace_back([&, C] {
      LlstarClient Client;
      std::string Err;
      if (!Client.connect("127.0.0.1", H.Server.port(), &Err)) {
        ++Failures;
        return;
      }
      wire::ParseArgs Args;
      Args.BundleHash = Hash;
      for (int I = 0; I < 25; ++I) {
        Args.Input = std::to_string(C) + " + " + std::to_string(I) + " * 2";
        wire::Message Reply;
        if (!Client.parse(Args, false, Reply, &Err) ||
            Reply.Parse.Status != uint8_t(ParseStatus::Ok)) {
          ++Failures;
          return;
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_EQ(H.Server.service().metrics().Ok, 150);
  EXPECT_GE(H.Server.counters().ConnectionsAccepted, 7);
}

//===----------------------------------------------------------------------===//
// Incremental edit sessions
//===----------------------------------------------------------------------===//

/// Sends one Edit request and fails the test on transport errors.
wire::Message editOrFail(LlstarClient &Client, const wire::EditArgs &Args) {
  wire::Message Reply;
  std::string Err;
  EXPECT_TRUE(Client.edit(Args, Reply, &Err)) << Err;
  return Reply;
}

TEST(DaemonTest, EditSessionsMatchInProcessScratchParses) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  DiagnosticEngine Diags;
  auto Bundle = makeGrammarBundle(ExprGrammar, Diags);
  ASSERT_TRUE(Bundle) << Diags.str();
  incremental::SessionOptions SO; // recover, interpreted, heap — mode bit 1
  incremental::IncrementalSession Local(Bundle, SO);

  wire::EditArgs Args;
  Args.SessionId = 7;
  Args.Action = wire::EditActionReset;
  Args.Mode = wire::EditModeRecover;
  Args.BundleHash = Hash;
  Args.WantTree = true;
  Args.NewText = "1 + 2 * (3 + 4)";
  Local.reset(Args.NewText);

  auto CheckAgainstLocal = [&](const wire::Message &Reply) {
    ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::EditReply)
        << wireErrorName(Reply.Error.Code) << ": " << Reply.Error.Message;
    EXPECT_EQ(Reply.Edit.EditError, 0);
    incremental::ScratchResult R =
        incremental::scratchParse(*Bundle, Local.text(), SO);
    EXPECT_EQ(Reply.Edit.Status, uint8_t(R.ParseOk ? ParseStatus::Ok
                                                   : ParseStatus::Recovered));
    EXPECT_EQ(Reply.Edit.NumTokens, int64_t(R.Tokens.size()));
    EXPECT_EQ(Reply.Edit.TreeNodes, R.TreeNodes);
    EXPECT_EQ(Reply.Edit.ErrorLeaves, R.ErrorLeaves);
    EXPECT_EQ(Reply.Edit.TreeText, R.TreeText);
    EXPECT_EQ(Reply.Edit.DiagText, R.DiagText);
  };
  CheckAgainstLocal(editOrFail(H.Client, Args));

  // A few edits, including one that breaks the input (recovery kicks in)
  // and one that repairs it. The wire session must track the local one.
  struct {
    uint64_t Offset, OldLen;
    const char *NewText;
  } Edits[] = {
      {4, 1, "77"},
      {0, 0, "("},   // unbalanced — recovered parse with diagnostics
      {0, 1, ""},    // repaired
      {8, 0, " * x + 0"}, // 'x' is not a token of this grammar
  };
  Args.Action = wire::EditActionApply;
  for (const auto &E : Edits) {
    Args.Offset = E.Offset;
    Args.OldLen = E.OldLen;
    Args.NewText = E.NewText;
    Local.applyEdit({int64_t(E.Offset), int64_t(E.OldLen), E.NewText});
    CheckAgainstLocal(editOrFail(H.Client, Args));
  }

  // Out-of-range edits are rejected with the typed error and leave the
  // session unchanged — the next valid edit still matches the local state.
  Args.Offset = 100000;
  Args.OldLen = 1;
  Args.NewText = "x";
  wire::Message Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::EditReply);
  EXPECT_EQ(Reply.Edit.EditError,
            uint16_t(incremental::EditScriptError::OutOfRange));
  Args.Offset = 0;
  Args.OldLen = 0;
  Args.NewText = "0 + ";
  Local.applyEdit({0, 0, "0 + "});
  CheckAgainstLocal(editOrFail(H.Client, Args));

  // Edit-session work folds into the service metrics via
  // recordExternalStats: the stats JSON must show relexed tokens.
  std::string Json, Err;
  ASSERT_TRUE(H.Client.stats(false, Json, &Err)) << Err;
  EXPECT_NE(Json.find("\"tokensRelexed\":"), std::string::npos);
  EXPECT_EQ(Json.find("\"tokensRelexed\":0,"), std::string::npos) << Json;
}

TEST(DaemonTest, EditSessionLifecycleErrors) {
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  // Apply before any Reset: UnknownSession.
  wire::EditArgs Args;
  Args.SessionId = 3;
  Args.Action = wire::EditActionApply;
  Args.NewText = "x";
  wire::Message Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::UnknownSession);

  // Reset against a bundle hash the daemon has never seen: UnknownBundle.
  Args.Action = wire::EditActionReset;
  Args.BundleHash = 0xBAD0BAD0BAD0BAD0ull;
  Args.NewText = "1";
  Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::UnknownBundle);

  // Reset properly, Close, then Apply: the session is gone again.
  Args.BundleHash = Hash;
  Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::EditReply);
  Args.Action = wire::EditActionClose;
  Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::EditReply);
  Args.Action = wire::EditActionApply;
  Args.Offset = 0;
  Args.OldLen = 0;
  Args.NewText = "2";
  Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::UnknownSession);

  // A draining daemon refuses Edit like any other work.
  H.Server.drain();
  Args.Action = wire::EditActionReset;
  Args.NewText = "3";
  Reply = editOrFail(H.Client, Args);
  ASSERT_EQ(Reply.Hdr.Op, wire::Opcode::ErrorReply);
  EXPECT_EQ(Reply.Error.Code, wire::WireError::Draining);
}

TEST(DaemonTest, ConcurrentConnectionsRunIndependentEditSessions) {
  // Six connections each drive their own incremental session (same
  // client-chosen id on purpose — ids are per-connection) while comparing
  // against a local session. This is the TSan target for the edit path.
  Harness H;
  ASSERT_TRUE(H.Ok);
  uint64_t Hash = loadOrFail(H.Client, ExprGrammar);

  DiagnosticEngine Diags;
  auto Bundle = makeGrammarBundle(ExprGrammar, Diags);
  ASSERT_TRUE(Bundle) << Diags.str();

  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int C = 0; C < 6; ++C)
    Threads.emplace_back([&, C] {
      LlstarClient Client;
      std::string Err;
      if (!Client.connect("127.0.0.1", H.Server.port(), &Err)) {
        ++Failures;
        return;
      }
      incremental::SessionOptions SO;
      SO.UseCompiled = (C % 2) != 0;
      incremental::IncrementalSession Local(Bundle, SO);
      wire::EditArgs Args;
      Args.SessionId = 1;
      Args.Action = wire::EditActionReset;
      Args.Mode = wire::EditModeRecover |
                  (SO.UseCompiled ? wire::EditModeCompiled : 0);
      Args.BundleHash = Hash;
      Args.NewText = std::to_string(C) + " + 1 * (2 + 3)";
      Local.reset(Args.NewText);
      for (int I = 0; I < 20; ++I) {
        wire::Message Reply;
        if (!Client.edit(Args, Reply, &Err) ||
            Reply.Hdr.Op != wire::Opcode::EditReply ||
            Reply.Edit.NumTokens != int64_t(Local.tokens().size())) {
          ++Failures;
          return;
        }
        Args.Action = wire::EditActionApply;
        Args.Offset = uint64_t(I % 3);
        Args.OldLen = 1;
        Args.NewText = std::to_string((C + I) % 10);
        Local.applyEdit({int64_t(Args.Offset), 1, Args.NewText});
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

} // namespace
