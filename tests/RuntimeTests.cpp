//===- tests/RuntimeTests.cpp - LL(*) parser runtime tests ----------------===//
//
// End-to-end tests of the interpreting LL(*) parser (paper Section 4):
// DFA-driven prediction, backtracking via syntactic predicates, semantic
// predicates, action gating, memoization, statistics, and error reporting.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

const char *Fig1Grammar = R"(
grammar S;
s    : ID | ID '=' expr | 'unsigned'* 'int' ID | 'unsigned'* ID ID ;
expr : INT ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

TEST(Runtime, Figure1Parses) {
  auto AG = analyzeOrFail(Fig1Grammar);
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "x"), "(s x)");
  EXPECT_EQ(parseToString(*AG, "x = 5"), "(s x = (expr 5))");
  EXPECT_EQ(parseToString(*AG, "int x"), "(s int x)");
  EXPECT_EQ(parseToString(*AG, "unsigned unsigned int x"),
            "(s unsigned unsigned int x)");
  EXPECT_EQ(parseToString(*AG, "unsigned T x"), "(s unsigned T x)");
  EXPECT_EQ(parseToString(*AG, "T x"), "(s T x)");
}

TEST(Runtime, Figure1AverageLookaheadIsSmall) {
  auto AG = analyzeOrFail(Fig1Grammar);
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "unsigned unsigned int x");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("s");
  ASSERT_TRUE(P.ok()) << Diags.str();
  // The decision scanned three tokens past the two 'unsigned' to reach
  // 'int'.
  EXPECT_EQ(P.stats().maxLookahead(), 3);
  EXPECT_EQ(P.stats().backtrackEvents(), 0);
}

const char *Fig2Grammar = R"(
grammar T;
options { backtrack=true; m=1; }
t    : '-'* ID | expr ;
expr : INT | '-' expr ;
ID   : [a-zA-Z_] [a-zA-Z0-9_]* ;
INT  : [0-9]+ ;
WS   : [ \t\r\n]+ -> skip ;
)";

TEST(Runtime, Figure2ShallowInputsDoNotBacktrack) {
  auto AG = analyzeOrFail(Fig2Grammar);
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "- x");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("t");
  EXPECT_TRUE(P.ok()) << Diags.str();
  // "The decision will not backtrack in practice unless the input starts
  // with --".
  EXPECT_EQ(P.stats().backtrackEvents(), 0);
}

TEST(Runtime, Figure2DeepInputsBacktrack) {
  auto AG = analyzeOrFail(Fig2Grammar);
  ASSERT_TRUE(AG);
  {
    TokenStream Stream = lexOrFail(*AG, "- - - - x");
    DiagnosticEngine Diags;
    LLStarParser P(*AG, Stream, nullptr, Diags);
    P.parse("t");
    EXPECT_TRUE(P.ok()) << Diags.str();
    EXPECT_GT(P.stats().backtrackEvents(), 0);
  }
  {
    TokenStream Stream = lexOrFail(*AG, "- - - - 7");
    DiagnosticEngine Diags;
    LLStarParser P(*AG, Stream, nullptr, Diags);
    auto Tree = P.parse("t");
    EXPECT_TRUE(P.ok()) << Diags.str();
    EXPECT_EQ(Tree->str(AG->grammar()),
              "(t (expr - (expr - (expr - (expr - (expr 7))))))");
  }
}

TEST(Runtime, NoViableAlternativeReportsDeepToken) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A '+' B | A '+' C ;
A:'a'; B:'b'; C:'c';
D:'d';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "a+d");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("a");
  EXPECT_FALSE(P.ok());
  // Error must point at 'd' (the token that killed the DFA walk), not at
  // the decision start 'a' (paper Section 4.4).
  EXPECT_TRUE(Diags.contains("'d'")) << Diags.str();
}

TEST(Runtime, MismatchedTokenError) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A B C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "ac");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("a");
  EXPECT_FALSE(P.ok());
  EXPECT_TRUE(Diags.contains("mismatched input 'c' expecting B"))
      << Diags.str();
}

TEST(Runtime, SingleTokenDeletionRecovers) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A B C ;
A:'a'; B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "adbc");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  auto Tree = P.parse("a");
  // The spurious 'd' is reported and skipped; the rest parses.
  EXPECT_FALSE(P.ok());
  EXPECT_EQ(Diags.errorCount(), 1u);
  EXPECT_EQ(Tree->numTokens(), 3u);
}

TEST(Runtime, SemanticPredicateDirectsParse) {
  auto AG = analyzeOrFail(R"(
grammar T;
stat : {isType}? ID ID ';' | ID ID ';' ;
ID : [a-zA-Z]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  for (bool IsType : {true, false}) {
    SemanticEnv Env;
    Env.definePredicate("isType", [&] { return IsType; });
    TokenStream Stream = lexOrFail(*AG, "T x ;");
    DiagnosticEngine Diags;
    LLStarParser P(*AG, Stream, &Env, Diags);
    auto Tree = P.parse("stat");
    ASSERT_TRUE(P.ok()) << Diags.str();
    (void)Tree;
    // Which alternative ran is visible through the decision stats: both
    // alternatives produce identical trees, so check the predicate was
    // actually consulted.
    EXPECT_TRUE(Diags.empty());
  }
}

TEST(Runtime, GatedPredicateSelectsAlternative) {
  // Distinguishable only by predicate; different trees expose the choice.
  auto AG = analyzeOrFail(R"(
grammar T;
s : {useA}? x | y ;
x : ID ;
y : ID ;
ID : [a-z]+ ;
WS : [ \t]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  {
    SemanticEnv Env;
    Env.definePredicate("useA", [] { return true; });
    EXPECT_EQ(parseToString(*AG, "q", "s", &Env), "(s (x q))");
  }
  {
    SemanticEnv Env;
    Env.definePredicate("useA", [] { return false; });
    EXPECT_EQ(parseToString(*AG, "q", "s", &Env), "(s (y q))");
  }
}

TEST(Runtime, ActionsRunInOrderAndAreGatedDuringSpeculation) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : a | b ;
a : {{enter}} A {actA} B ;
b : {{enter}} A {actB} C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  int Enters = 0, ActA = 0, ActB = 0;
  SemanticEnv Env;
  Env.defineAction("enter", [&] { ++Enters; });
  Env.defineAction("actA", [&] { ++ActA; });
  Env.defineAction("actB", [&] { ++ActB; });

  TokenStream Stream = lexOrFail(*AG, "ac");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, &Env, Diags);
  P.parse("s");
  ASSERT_TRUE(P.ok()) << Diags.str();
  // The s decision needs backtracking (a and b share the prefix A, and the
  // decision is ambiguous only at k=2... actually A B vs A C is LL(2)), so
  // actions run exactly once.
  EXPECT_EQ(ActB, 1);
  EXPECT_EQ(ActA, 0);
  EXPECT_GE(Enters, 1);
}

TEST(Runtime, PlainActionsDoNotRunWhileSpeculating) {
  // Force real backtracking: both alternatives start with an unbounded
  // recursive prefix.
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : p '.' {committed} | p '!' {committed} ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
WS : [ \t]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  int Committed = 0;
  SemanticEnv Env;
  Env.defineAction("committed", [&] { ++Committed; });
  TokenStream Stream = lexOrFail(*AG, "((x))!");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, &Env, Diags);
  P.parse("s");
  ASSERT_TRUE(P.ok()) << Diags.str();
  EXPECT_GT(P.stats().backtrackEvents(), 0);
  // Speculation attempted alternative 1 (which also ends in {committed})
  // but the action must not fire during speculation.
  EXPECT_EQ(Committed, 1);
}

TEST(Runtime, MemoizationCachesSpeculativeParses) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : p '.' | p '!' | p '?' ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
WS : [ \t]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "((((((x))))))?");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("s");
  ASSERT_TRUE(P.ok()) << Diags.str();
  EXPECT_GT(P.stats().MemoHits, 0);
}

TEST(Runtime, EpsilonLoopBodyTerminates) {
  // A loop whose body can match epsilon must not spin forever.
  auto AG = analyzeOrFail(R"(
grammar T;
a : (B?)* C ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "c"));
  EXPECT_TRUE(parses(*AG, "bbc"));
}

TEST(Runtime, StarLoopAndOptional) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B* C? D ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "d"));
  EXPECT_TRUE(parses(*AG, "bbbd"));
  EXPECT_TRUE(parses(*AG, "bcd"));
  EXPECT_FALSE(parses(*AG, "cbd"));
}

TEST(Runtime, PlusLoopRequiresOneIteration) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B+ C ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "bc"));
  EXPECT_TRUE(parses(*AG, "bbbbc"));
  EXPECT_FALSE(parses(*AG, "c"));
}

TEST(Runtime, ExplicitEofEnforced) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : ID EOF ;
ID : [a-z]+ ;
WS : [ \t]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "x"));
  EXPECT_FALSE(parses(*AG, "x y"));
}

TEST(Runtime, LLStarBeatsPegOrderedChoice) {
  // PEG `a | ab` can never match the second alternative; LL(*) looks one
  // token further and picks correctly (paper Section 1).
  auto AG = analyzeOrFail(R"(
grammar T;
s : A | A B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "ab"), "(s a b)");
  EXPECT_EQ(parseToString(*AG, "a"), "(s a)");
}

TEST(Runtime, StatsCountEventsPerDecision) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : (B | C)+ ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "bcbcb");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("a");
  ASSERT_TRUE(P.ok()) << Diags.str();
  // (B|C) block decides 5 times; the + loop decides 5 times (4 iterate +
  // 1 exit after the final b... loop decisions: after each body = 5).
  EXPECT_EQ(P.stats().totalEvents(), 10);
  EXPECT_EQ(P.stats().decisionsCovered(), 2);
  EXPECT_DOUBLE_EQ(P.stats().avgLookahead(), 1.0);
}

} // namespace
