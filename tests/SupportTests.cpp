//===- tests/SupportTests.cpp - Support library tests ---------------------===//

#include "support/Diagnostics.h"
#include "support/IntervalSet.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <random>
#include <set>

using namespace llstar;

namespace {

TEST(IntervalSet, BasicAddAndContains) {
  IntervalSet S;
  EXPECT_TRUE(S.empty());
  S.add(5);
  S.add(7, 9);
  EXPECT_TRUE(S.contains(5));
  EXPECT_FALSE(S.contains(6));
  EXPECT_TRUE(S.contains(8));
  EXPECT_EQ(S.size(), 4);
  EXPECT_EQ(S.min(), 5);
  EXPECT_EQ(S.max(), 9);
}

TEST(IntervalSet, AdjacentRangesMerge) {
  IntervalSet S;
  S.add(1, 3);
  S.add(4, 6); // adjacent: must merge into one interval
  EXPECT_EQ(S.intervals().size(), 1u);
  EXPECT_EQ(S.size(), 6);
  S.add(10, 12);
  EXPECT_EQ(S.intervals().size(), 2u);
  S.add(7, 9); // bridges the gap
  EXPECT_EQ(S.intervals().size(), 1u);
  EXPECT_EQ(S.size(), 12);
}

TEST(IntervalSet, OverlappingAddsMerge) {
  IntervalSet S;
  S.add(10, 20);
  S.add(15, 30);
  S.add(5, 12);
  EXPECT_EQ(S.intervals().size(), 1u);
  EXPECT_EQ(S.min(), 5);
  EXPECT_EQ(S.max(), 30);
}

TEST(IntervalSet, RemoveSplits) {
  IntervalSet S = IntervalSet::range(1, 10);
  S.remove(5);
  EXPECT_EQ(S.intervals().size(), 2u);
  EXPECT_FALSE(S.contains(5));
  EXPECT_TRUE(S.contains(4));
  EXPECT_TRUE(S.contains(6));
  S.remove(1);
  S.remove(10);
  EXPECT_EQ(S.min(), 2);
  EXPECT_EQ(S.max(), 9);
}

TEST(IntervalSet, SetOperations) {
  IntervalSet A = IntervalSet::range(1, 10);
  IntervalSet B = IntervalSet::range(5, 15);
  IntervalSet U = A.unionWith(B);
  EXPECT_EQ(U.min(), 1);
  EXPECT_EQ(U.max(), 15);
  EXPECT_EQ(U.size(), 15);

  IntervalSet I = A.intersectWith(B);
  EXPECT_EQ(I.min(), 5);
  EXPECT_EQ(I.max(), 10);

  IntervalSet D = A.subtract(B);
  EXPECT_EQ(D.min(), 1);
  EXPECT_EQ(D.max(), 4);

  IntervalSet C = A.complement(0, 20);
  EXPECT_TRUE(C.contains(0));
  EXPECT_FALSE(C.contains(1));
  EXPECT_FALSE(C.contains(10));
  EXPECT_TRUE(C.contains(11));
  EXPECT_TRUE(C.contains(20));
}

/// Property sweep: random interval operations agree with a std::set oracle.
class IntervalSetProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(IntervalSetProperty, MatchesSetOracle) {
  std::mt19937 Rng(GetParam());
  std::uniform_int_distribution<int32_t> Val(-50, 50);
  IntervalSet S;
  std::set<int32_t> Oracle;
  for (int Op = 0; Op < 200; ++Op) {
    int32_t Lo = Val(Rng), Hi = Lo + int32_t(Rng() % 8);
    if (Rng() % 4 == 0) {
      int32_t V = Val(Rng);
      S.remove(V);
      Oracle.erase(V);
    } else {
      S.add(Lo, Hi);
      for (int32_t V = Lo; V <= Hi; ++V)
        Oracle.insert(V);
    }
  }
  EXPECT_EQ(S.size(), int64_t(Oracle.size()));
  for (int32_t V = -60; V <= 60; ++V)
    EXPECT_EQ(S.contains(V), Oracle.count(V) > 0) << "value " << V;
  // Invariant: intervals sorted, disjoint, non-adjacent.
  const auto &Ivals = S.intervals();
  for (size_t I = 0; I + 1 < Ivals.size(); ++I) {
    EXPECT_LE(Ivals[I].Lo, Ivals[I].Hi);
    EXPECT_LT(Ivals[I].Hi + 1, Ivals[I + 1].Lo);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Range(0u, 20u));

/// Union/intersection/subtraction properties on random sets.
class IntervalSetAlgebra : public ::testing::TestWithParam<uint32_t> {
protected:
  IntervalSet randomSet(std::mt19937 &Rng) {
    IntervalSet S;
    for (int I = 0; I < 5; ++I) {
      int32_t Lo = int32_t(Rng() % 100);
      S.add(Lo, Lo + int32_t(Rng() % 10));
    }
    return S;
  }
};

TEST_P(IntervalSetAlgebra, DeMorganAndInverses) {
  std::mt19937 Rng(GetParam());
  IntervalSet A = randomSet(Rng), B = randomSet(Rng);
  // (A - B) ∪ (A ∩ B) == A
  EXPECT_EQ(A.subtract(B).unionWith(A.intersectWith(B)), A);
  // A ∩ B == A - (U - B)
  IntervalSet NotB = B.complement(0, 200);
  EXPECT_EQ(A.intersectWith(B), A.subtract(NotB));
  // Complement is involutive over the universe.
  EXPECT_EQ(A.complement(0, 200).complement(0, 200),
            A.intersectWith(IntervalSet::range(0, 200)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetAlgebra, ::testing::Range(0u, 20u));

TEST(Diagnostics, CountsAndRendering) {
  DiagnosticEngine D;
  EXPECT_FALSE(D.hasErrors());
  D.warning(SourceLocation(3, 7), "watch out");
  D.error(SourceLocation(4, 0), "boom");
  D.note(SourceLocation(), "context");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.errorCount(), 1u);
  EXPECT_EQ(D.warningCount(), 1u);
  EXPECT_TRUE(D.contains("boom"));
  EXPECT_FALSE(D.contains("missing"));
  std::string S = D.str();
  EXPECT_NE(S.find("warning: 3:7: watch out"), std::string::npos);
  EXPECT_NE(S.find("error: 4:0: boom"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
  EXPECT_TRUE(D.empty());
}

TEST(StringUtils, Escaping) {
  EXPECT_EQ(escapeChar('\n'), "\\n");
  EXPECT_EQ(escapeChar('a'), "a");
  EXPECT_EQ(escapeChar('\x01'), "\\x01");
  EXPECT_EQ(escapeString("a\tb"), "a\\tb");
}

TEST(StringUtils, JoinAndFormat) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(formatString("%d-%s", 42, "x"), "42-x");
}

TEST(SourceLocation, OrderingAndStr) {
  EXPECT_LT(SourceLocation(1, 5), SourceLocation(2, 0));
  EXPECT_LT(SourceLocation(2, 0), SourceLocation(2, 1));
  EXPECT_EQ(SourceLocation(3, 4).str(), "3:4");
  EXPECT_EQ(SourceLocation().str(), "<unknown>");
  EXPECT_FALSE(SourceLocation().isValid());
}

} // namespace
