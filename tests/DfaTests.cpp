//===- tests/DfaTests.cpp - Lookahead-DFA model and serializer tests ------===//

#include "TestHelpers.h"
#include "dfa/LookaheadDFA.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

TEST(LookaheadDfa, TextSerializationShape) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B C | B D ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  std::string S = AG->dfa(D).str(AG->atn());
  EXPECT_NE(S.find("s0 -B-> s1"), std::string::npos) << S;
  EXPECT_NE(S.find("=> 1"), std::string::npos) << S;
  EXPECT_NE(S.find("=> 2"), std::string::npos) << S;
}

TEST(LookaheadDfa, DotSerializationIsWellFormed) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B C | B D ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  std::string Dot = AG->dfa(decisionOf(*AG, "a")).dot(AG->atn());
  EXPECT_EQ(Dot.find("digraph"), 0u);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos); // accept states
  EXPECT_NE(Dot.find("}\n"), std::string::npos);
  // Balanced braces.
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(LookaheadDfa, PredicateEdgeDescriptions) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
a : b X | b Y ;
b : B b | B ;
B:'b'; X:'x'; Y:'y';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  const LookaheadDfa &Dfa = AG->dfa(D);
  ASSERT_TRUE(Dfa.hasSynPredEdges());
  std::string S = Dfa.str(AG->atn());
  EXPECT_NE(S.find("backtrack("), std::string::npos) << S;
}

TEST(LookaheadDfa, SemPredDescriptions) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : {inClassScope}? B | B ;
B:'b';
)");
  ASSERT_TRUE(AG);
  std::string S = AG->dfa(decisionOf(*AG, "a")).str(AG->atn());
  EXPECT_NE(S.find("{inClassScope}?"), std::string::npos) << S;
}

TEST(LookaheadDfa, FixedKComputation) {
  struct Case {
    const char *Grammar;
    int32_t ExpectedK;
  } Cases[] = {
      {"grammar T; a : B | C ; B:'b'; C:'c';", 1},
      {"grammar T; a : B C | B D ; B:'b'; C:'c'; D:'d';", 2},
      {"grammar T; a : B B B X | B B B Y ; B:'b'; X:'x'; Y:'y';", 4},
  };
  for (const Case &C : Cases) {
    auto AG = analyzeOrFail(C.Grammar);
    ASSERT_TRUE(AG);
    EXPECT_EQ(AG->dfa(decisionOf(*AG, "a")).fixedK(), C.ExpectedK)
        << C.Grammar;
  }
}

TEST(LookaheadDfa, EdgeLookupMissReturnsMinusOne) {
  DfaState S;
  S.Edges.push_back({5, 1});
  S.Edges.push_back({9, 2});
  EXPECT_EQ(S.edgeOn(5), 1);
  EXPECT_EQ(S.edgeOn(9), 2);
  EXPECT_EQ(S.edgeOn(7), -1);
  EXPECT_EQ(S.edgeOn(TokenEof), -1);
}

TEST(LookaheadDfa, AcceptStatesShareAlternative) {
  // Several lookahead paths predicting the same alternative must converge
  // on one accept state per alternative (paper: one f_i per partition
  // block R_i).
  auto AG = analyzeOrFail(R"(
grammar T;
a : B C | D E ;
B:'b'; C:'c'; D:'d'; E:'e';
)");
  ASSERT_TRUE(AG);
  const LookaheadDfa &Dfa = AG->dfa(decisionOf(*AG, "a"));
  int AcceptsFor1 = 0, AcceptsFor2 = 0;
  for (size_t S = 0; S < Dfa.numStates(); ++S) {
    if (Dfa.state(int32_t(S)).PredictedAlt == 1)
      ++AcceptsFor1;
    if (Dfa.state(int32_t(S)).PredictedAlt == 2)
      ++AcceptsFor2;
  }
  EXPECT_EQ(AcceptsFor1, 1);
  EXPECT_EQ(AcceptsFor2, 1);
}

} // namespace
