//===- tests/FixTests.cpp - Profile-guided lint fixes ----------------------===//
//
// The auto-fix engine end to end: a golden before/after per fix kind
// (deletions, synpred removal, literal inlining, profile-driven reorder),
// idempotence of a second apply, whole-fix rejection of overlapping edits,
// suppression directives blocking a fix, the unverified -> suggestion-only
// downgrade in SARIF, unified-diff rendering, profile loading / merging /
// identity-join / hotness ranking, and the documented fixed key order of
// ParserStats JSON that makes profiles diffable.
//
//===----------------------------------------------------------------------===//

#include "lint/Fix.h"
#include "lint/Lint.h"
#include "lint/Profile.h"
#include "lint/SarifWriter.h"
#include "runtime/ParserStats.h"

#include "TestHelpers.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace llstar;
using namespace llstar::test;

namespace {

/// Analyzes + lints \p Text and computes fixes against it.
struct FixRun {
  std::unique_ptr<AnalyzedGrammar> AG;
  LintResult Lint;
  std::vector<Fix> Fixes;
};

FixRun runFixes(const std::string &Text, const LintProfile *Profile = nullptr,
                FixOptions Opts = FixOptions()) {
  FixRun Run;
  Run.AG = analyzeOrFail(Text);
  if (!Run.AG)
    return Run;
  Run.Lint = LintEngine().run(*Run.AG, Text);
  Run.Fixes = computeFixes(*Run.AG, Run.Lint, Text, Profile, Opts);
  return Run;
}

const Fix *fixById(const std::vector<Fix> &Fixes, const std::string &Id) {
  for (const Fix &F : Fixes)
    if (F.Id == Id)
      return &F;
  return nullptr;
}

std::vector<const Fix *> verifiedFixes(const std::vector<Fix> &Fixes) {
  std::vector<const Fix *> Out;
  for (const Fix &F : Fixes)
    if (F.Verified)
      Out.push_back(&F);
  return Out;
}

/// Loads a LintProfile from JSON text, failing the test on parse errors.
LintProfile loadProfile(const std::string &Json) {
  LintProfile P;
  std::string Err;
  EXPECT_TRUE(P.load(Json, &Err)) << Err;
  return P;
}

/// The shared fixture: one dead rule, one dead token, everything else
/// reachable. Used by the deletion goldens and the idempotence tests.
const char *DeadSymbolsGrammar = "grammar t;\n"
                                 "prog : stmt+ ;\n"
                                 "stmt : ID ';' | NUM ';' ;\n"
                                 "helper : ID NUM ;\n"
                                 "ID : [a-z]+ ;\n"
                                 "NUM : [0-9]+ ;\n"
                                 "UNUSED : '%' ;\n"
                                 "WS : [ \\t\\r\\n]+ -> skip ;\n";

//===----------------------------------------------------------------------===//
// Goldens: one byte-exact before/after per fix kind
//===----------------------------------------------------------------------===//

TEST(Fix, DeleteDeadRuleGolden) {
  FixRun Run = runFixes(DeadSymbolsGrammar);
  const Fix *F = fixById(Run.Fixes, "delete-dead-rule:helper");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Kind, "delete-dead-rule");
  EXPECT_TRUE(F->Verified) << F->VerifyNote;
  // Anchored to the dead-rule finding it repairs.
  ASSERT_GE(F->FindingIndex, 0);
  EXPECT_EQ(Run.Lint.Diagnostics[size_t(F->FindingIndex)].Id, "dead-rule");
  EXPECT_EQ(applyFixes(DeadSymbolsGrammar, {F}),
            "grammar t;\n"
            "prog : stmt+ ;\n"
            "stmt : ID ';' | NUM ';' ;\n"
            "ID : [a-z]+ ;\n"
            "NUM : [0-9]+ ;\n"
            "UNUSED : '%' ;\n"
            "WS : [ \\t\\r\\n]+ -> skip ;\n");
}

TEST(Fix, DeleteDeadTokenGolden) {
  FixRun Run = runFixes(DeadSymbolsGrammar);
  const Fix *F = fixById(Run.Fixes, "delete-dead-token:UNUSED");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Kind, "delete-dead-token");
  EXPECT_TRUE(F->Verified) << F->VerifyNote;
  EXPECT_EQ(applyFixes(DeadSymbolsGrammar, {F}),
            "grammar t;\n"
            "prog : stmt+ ;\n"
            "stmt : ID ';' | NUM ';' ;\n"
            "helper : ID NUM ;\n"
            "ID : [a-z]+ ;\n"
            "NUM : [0-9]+ ;\n"
            "WS : [ \\t\\r\\n]+ -> skip ;\n");
}

TEST(Fix, RemoveSynpredGolden) {
  const std::string Text = "grammar t;\n"
                           "s : ('x' 'y')=> 'x' 'y'\n"
                           "  | 'z'\n"
                           "  ;\n"
                           "WS : [ \\t\\r\\n]+ -> skip ;\n";
  FixRun Run = runFixes(Text);
  ASSERT_EQ(Run.Fixes.size(), 1u);
  const Fix &F = Run.Fixes[0];
  EXPECT_EQ(F.Kind, "remove-synpred");
  EXPECT_TRUE(F.Verified) << F.VerifyNote;
  ASSERT_GE(F.FindingIndex, 0);
  EXPECT_EQ(Run.Lint.Diagnostics[size_t(F.FindingIndex)].Id,
            "synpred-redundant");
  EXPECT_EQ(applyFixes(Text, {&F}), "grammar t;\n"
                                    "s : 'x' 'y'\n"
                                    "  | 'z'\n"
                                    "  ;\n"
                                    "WS : [ \\t\\r\\n]+ -> skip ;\n");
}

TEST(Fix, InlineShadowedLiteralGolden) {
  // PRINT's text is claimed by the earlier ID rule (maximal munch +
  // priority), so PRINT never lexes; inlining the literal moves the match
  // into the implicit-literal tier, which out-prioritizes named rules.
  // The language is unchanged — 'print' was already accepted via ID — so
  // the fix verifies.
  const std::string Text = "grammar t;\n"
                           "s : kw ID ;\n"
                           "kw : PRINT | ID ;\n"
                           "ID : [a-z]+ ;\n"
                           "PRINT : 'print' ;\n"
                           "WS : [ \\t\\r\\n]+ -> skip ;\n";
  FixRun Run = runFixes(Text);
  const Fix *F = fixById(Run.Fixes, "inline-shadowed-literal:PRINT");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->Verified) << F->VerifyNote;
  EXPECT_EQ(applyFixes(Text, {F}), "grammar t;\n"
                                   "s : kw ID ;\n"
                                   "kw : 'print' | ID ;\n"
                                   "ID : [a-z]+ ;\n"
                                   "WS : [ \\t\\r\\n]+ -> skip ;\n");
}

//===----------------------------------------------------------------------===//
// Profile-driven reorder
//===----------------------------------------------------------------------===//

/// Three disjoint single-token alternatives: reorderable by construction
/// (LL(1), no resolutions, no predicates).
const char *ReorderGrammar = "grammar t;\n"
                             "s : 'a' ID\n"
                             "  | 'b' ID\n"
                             "  | 'c' ID\n"
                             "  ;\n"
                             "ID : [a-z]+ ;\n"
                             "WS : [ \\t\\r\\n]+ -> skip ;\n";

/// A profile claiming alt 2 is hottest, then alt 3, then alt 1, keyed by
/// stable identity (rule s, decision 0 in rule).
const char *ReorderProfileJson =
    "{\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
    "\"events\":61,\"totalK\":61,\"maxK\":1,\"backtrackEvents\":0,"
    "\"backtrackTotalK\":0,\"altEvents\":[1,50,10]}]}";

TEST(Fix, ReorderAltsProfileGolden) {
  LintProfile P = loadProfile(ReorderProfileJson);
  FixRun Run = runFixes(ReorderGrammar, &P);
  const Fix *F = fixById(Run.Fixes, "reorder-alts:s:0");
  ASSERT_NE(F, nullptr);
  EXPECT_EQ(F->Kind, "reorder-alts");
  EXPECT_TRUE(F->Verified) << F->VerifyNote;
  // Hit counts surface in the description, hottest first.
  EXPECT_NE(F->Description.find("alt 2: 50"), std::string::npos)
      << F->Description;
  EXPECT_EQ(applyFixes(ReorderGrammar, {F}), "grammar t;\n"
                                             "s : 'b' ID\n"
                                             "  | 'c' ID\n"
                                             "  | 'a' ID\n"
                                             "  ;\n"
                                             "ID : [a-z]+ ;\n"
                                             "WS : [ \\t\\r\\n]+ -> skip ;\n");
}

TEST(Fix, ReorderRequiresProfile) {
  FixRun Run = runFixes(ReorderGrammar, /*Profile=*/nullptr);
  for (const Fix &F : Run.Fixes)
    EXPECT_NE(F.Kind, "reorder-alts") << F.Id;
}

TEST(Fix, ReorderSkipsProfileInObservedOrder) {
  // Counts already descending by position: the identity permutation is
  // never emitted as a fix.
  LintProfile P = loadProfile(
      "{\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":61,\"totalK\":61,\"maxK\":1,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[50,10,1]}]}");
  FixRun Run = runFixes(ReorderGrammar, &P);
  EXPECT_EQ(fixById(Run.Fixes, "reorder-alts:s:0"), nullptr);
}

TEST(Fix, ReorderSkipsAmbiguousDecision) {
  // Alt 2 is shadowed by alt 1 (ambiguity resolved by order): reordering
  // would change which alternative wins, so no fix is offered no matter
  // what the profile claims.
  const std::string Text = "grammar t;\n"
                           "s : w | 'a' ;\n"
                           "w : 'a' ;\n";
  LintProfile P = loadProfile(
      "{\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":10,\"totalK\":10,\"maxK\":1,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[1,9]}]}");
  FixRun Run = runFixes(Text, &P);
  for (const Fix &F : Run.Fixes)
    EXPECT_NE(F.Kind, "reorder-alts") << F.Id;
}

//===----------------------------------------------------------------------===//
// Idempotence
//===----------------------------------------------------------------------===//

TEST(Fix, SecondApplyIsNoOpForDeletions) {
  FixRun First = runFixes(DeadSymbolsGrammar);
  std::string Fixed = applyFixes(DeadSymbolsGrammar,
                                 verifiedFixes(First.Fixes));
  ASSERT_NE(Fixed, DeadSymbolsGrammar);

  // Re-analyzing the fixed text finds nothing left to fix: the second
  // apply returns the text unchanged.
  FixRun Second = runFixes(Fixed);
  EXPECT_EQ(Second.Fixes.size(), 0u);
  EXPECT_EQ(applyFixes(Fixed, verifiedFixes(Second.Fixes)), Fixed);
  // And the fixed grammar lints clean.
  EXPECT_EQ(Second.Lint.errorCount(), 0);
  EXPECT_EQ(Second.Lint.warningCount(), 0);
}

TEST(Fix, ReorderIdempotentWithRefreshedProfile) {
  // Reorders are profile-relative: after applying one, the profile must
  // be re-collected (alt attribution is positional). A refreshed profile
  // observing the new order proposes no further reorder.
  LintProfile Stale = loadProfile(ReorderProfileJson);
  FixRun First = runFixes(ReorderGrammar, &Stale);
  std::string Fixed =
      applyFixes(ReorderGrammar, {fixById(First.Fixes, "reorder-alts:s:0")});

  LintProfile Refreshed = loadProfile(
      "{\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":61,\"totalK\":61,\"maxK\":1,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[50,10,1]}]}");
  FixRun Second = runFixes(Fixed, &Refreshed);
  EXPECT_EQ(fixById(Second.Fixes, "reorder-alts:s:0"), nullptr);
  EXPECT_EQ(applyFixes(Fixed, verifiedFixes(Second.Fixes)), Fixed);
}

//===----------------------------------------------------------------------===//
// Overlap rejection, suppression, downgrade
//===----------------------------------------------------------------------===//

TEST(Fix, OverlappingFixRejectedWhole) {
  // Two hand-built fixes: B's first edit is disjoint from A, its second
  // overlaps A's edit. B must be skipped whole — a half-applied fix is
  // worse than none — and reported by id.
  std::string Source = "0123456789";
  Fix A;
  A.Id = "a";
  A.Edits.push_back({2, 5, "XX"});
  Fix B;
  B.Id = "b";
  B.Edits.push_back({8, 9, "Y"}); // disjoint, but rides with the overlap
  B.Edits.push_back({4, 6, "Z"}); // overlaps A's [2,5)
  std::vector<std::string> Rejected;
  EXPECT_EQ(applyFixes(Source, {&A, &B}, &Rejected), "01XX56789");
  ASSERT_EQ(Rejected.size(), 1u);
  EXPECT_EQ(Rejected[0], "b");

  // Order is first-come-first-served: reversed, B wins and A is rejected.
  Rejected.clear();
  EXPECT_EQ(applyFixes(Source, {&B, &A}, &Rejected), "0123Z67Y9");
  ASSERT_EQ(Rejected.size(), 1u);
  EXPECT_EQ(Rejected[0], "a");
}

TEST(Fix, SuppressionBlocksFix) {
  // Suppressed findings never reach the LintResult, so their fixes are
  // never computed: the directive is an opt-out from --apply too.
  std::string Text = DeadSymbolsGrammar;
  size_t At = Text.find("helper");
  ASSERT_NE(At, std::string::npos);
  Text.insert(At, "// llstar-lint-disable dead-rule\n");
  FixRun Run = runFixes(Text);
  EXPECT_EQ(fixById(Run.Fixes, "delete-dead-rule:helper"), nullptr);
  // The unrelated dead-token fix is still offered.
  EXPECT_NE(fixById(Run.Fixes, "delete-dead-token:UNUSED"), nullptr);
}

TEST(Fix, UnverifiedFixDowngradedInSarif) {
  // With verification off every fix is unverified; SARIF must carry no
  // `fixes` object (viewers apply those blindly) — only the
  // suggestion-only property bag entry.
  FixRun Run = runFixes(DeadSymbolsGrammar, nullptr,
                        FixOptions{/*Verify=*/false});
  ASSERT_FALSE(Run.Fixes.empty());
  for (const Fix &F : Run.Fixes) {
    EXPECT_FALSE(F.Verified);
    EXPECT_FALSE(F.VerifyNote.empty());
  }
  std::string S = renderSarif(Run.Lint, "t.g", Run.Fixes);
  EXPECT_EQ(S.find("\"fixes\""), std::string::npos);
  EXPECT_NE(S.find("\"suggestedFix\""), std::string::npos);
  EXPECT_NE(S.find("\"unverified\""), std::string::npos);
}

TEST(Fix, VerifiedFixInSarif) {
  // Deletion fixes: replacements with deletedRegions only (omitting
  // insertedContent is SARIF's spelling of "delete").
  FixRun Run = runFixes(DeadSymbolsGrammar);
  std::string S = renderSarif(Run.Lint, "t.g", Run.Fixes);
  for (const char *Needle :
       {"\"fixes\": [", "\"artifactChanges\": [",
        "\"artifactLocation\": {\"uri\": \"t.g\"}", "\"replacements\": [",
        "\"deletedRegion\": {\"charOffset\": ", "\"charLength\": "})
    EXPECT_NE(S.find(Needle), std::string::npos) << "missing " << Needle;
  EXPECT_EQ(S.find("\"insertedContent\""), std::string::npos);

  // An inlining fix replaces text, so its replacements carry
  // insertedContent (the quoted literal spelling).
  FixRun Inline = runFixes("grammar t;\n"
                           "s : kw ID ;\n"
                           "kw : PRINT | ID ;\n"
                           "ID : [a-z]+ ;\n"
                           "PRINT : 'print' ;\n"
                           "WS : [ \\t\\r\\n]+ -> skip ;\n");
  S = renderSarif(Inline.Lint, "r.g", Inline.Fixes);
  EXPECT_NE(S.find("\"insertedContent\": {\"text\": \"'print'\"}"),
            std::string::npos)
      << S;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

TEST(Fix, UnifiedDiff) {
  EXPECT_EQ(renderUnifiedDiff("same\n", "same\n", "x.g"), "");
  std::string D = renderUnifiedDiff("a\nb\nc\nd\n", "a\nB\nc\nd\n", "x.g");
  EXPECT_NE(D.find("--- a/x.g\n"), std::string::npos) << D;
  EXPECT_NE(D.find("+++ b/x.g\n"), std::string::npos) << D;
  EXPECT_NE(D.find("-b\n"), std::string::npos) << D;
  EXPECT_NE(D.find("+B\n"), std::string::npos) << D;
}

TEST(Fix, RenderFixesText) {
  FixRun Run = runFixes(DeadSymbolsGrammar);
  std::string T = renderFixesText(Run.Fixes);
  EXPECT_NE(T.find("delete-dead-rule:helper [verified]"), std::string::npos)
      << T;
  EXPECT_NE(T.find("delete-dead-token:UNUSED [verified]"), std::string::npos)
      << T;
}

//===----------------------------------------------------------------------===//
// Profiles: loading, merging, joining, ranking
//===----------------------------------------------------------------------===//

TEST(LintProfile, LoadsAllStatsShapes) {
  const std::string Decisions =
      "\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":5,\"totalK\":7,\"maxK\":3,\"backtrackEvents\":1,"
      "\"backtrackTotalK\":2,\"altEvents\":[4,1]}]";
  // Raw ParserStats JSON, the --stats-out wrapper, and ServiceMetrics
  // nesting all load identically.
  for (const std::string &Doc :
       {"{" + Decisions + "}",
        "{\"llstarProfile\":1,\"grammar\":\"g\",\"stats\":{" + Decisions +
            "}}",
        "{\"threads\":4,\"parser\":{" + Decisions + "}}"}) {
    LintProfile P = loadProfile(Doc);
    ASSERT_EQ(P.size(), 1u) << Doc;
    EXPECT_EQ(P.totalEvents(), 5);
    EXPECT_EQ(P.entries()[0].Rule, "s");
    EXPECT_EQ(P.entries()[0].MaxK, 3);
  }
  // Redirected `parse --stats-json` output carries a verdict line first.
  LintProfile P = loadProfile("parse succeeded in 0.1 ms\n{" + Decisions + "}");
  EXPECT_EQ(P.size(), 1u);
}

TEST(LintProfile, LoadErrors) {
  LintProfile P;
  std::string Err;
  EXPECT_FALSE(P.load("no json here", &Err));
  EXPECT_FALSE(P.load("{\"events\": 3}", &Err));
  EXPECT_NE(Err.find("decisions"), std::string::npos) << Err;
}

TEST(LintProfile, MergeSumsCountersAcrossLoads) {
  // Two workers' stats for the same decision: counters sum, maxK takes
  // the max, altEvents sum element-wise (with resize).
  LintProfile P = loadProfile(
      "{\"decisions\":[{\"decision\":0,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":5,\"totalK\":7,\"maxK\":3,\"backtrackEvents\":1,"
      "\"backtrackTotalK\":2,\"altEvents\":[4,1]}]}");
  std::string Err;
  ASSERT_TRUE(P.load(
      "{\"decisions\":[{\"decision\":9,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":2,\"totalK\":2,\"maxK\":1,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[1,0,1]}]}",
      &Err))
      << Err;
  ASSERT_EQ(P.size(), 1u); // identity join: same (rule, ordinal) merged
  const ProfileEntry &E = P.entries()[0];
  EXPECT_EQ(E.Events, 7);
  EXPECT_EQ(E.TotalK, 9);
  EXPECT_EQ(E.MaxK, 3);
  ASSERT_EQ(E.AltEvents.size(), 3u);
  EXPECT_EQ(E.AltEvents[0], 5);
  EXPECT_EQ(E.AltEvents[2], 1);
}

TEST(LintProfile, JoinsByIdentityNotIndex) {
  auto AG = analyzeOrFail(ReorderGrammar);
  ASSERT_TRUE(AG);
  std::vector<DecisionKey> Keys = AG->decisionKeys();
  // Find the decision owned by rule s.
  size_t SDecision = Keys.size();
  for (size_t D = 0; D < Keys.size(); ++D)
    if (Keys[D].Rule == "s" && Keys[D].DecisionInRule == 0)
      SDecision = D;
  ASSERT_LT(SDecision, Keys.size());

  // The profile's raw index is bogus (99): identity wins.
  LintProfile P = loadProfile(
      "{\"decisions\":[{\"decision\":99,\"rule\":\"s\",\"decisionInRule\":0,"
      "\"events\":5,\"totalK\":7,\"maxK\":3,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[]}]}");
  std::vector<const ProfileEntry *> Joined = P.joinTo(*AG);
  ASSERT_EQ(Joined.size(), Keys.size());
  ASSERT_NE(Joined[SDecision], nullptr);
  EXPECT_EQ(Joined[SDecision]->Events, 5);

  // An index-only profile (no rule names) falls back to the raw index.
  LintProfile ByIndex = loadProfile(
      "{\"decisions\":[{\"decision\":" + std::to_string(SDecision) +
      ",\"events\":4,\"totalK\":4,\"maxK\":1,\"backtrackEvents\":0,"
      "\"backtrackTotalK\":0,\"altEvents\":[]}]}");
  Joined = ByIndex.joinTo(*AG);
  ASSERT_NE(Joined[SDecision], nullptr);
  EXPECT_EQ(Joined[SDecision]->Events, 4);
}

TEST(LintProfile, ApplyProfileAnnotatesAndReRanks) {
  auto AG = analyzeOrFail(ReorderGrammar);
  ASSERT_TRUE(AG);
  std::vector<DecisionKey> Keys = AG->decisionKeys();
  int32_t SDecision = -1;
  for (size_t D = 0; D < Keys.size(); ++D)
    if (Keys[D].Rule == "s")
      SDecision = int32_t(D);
  ASSERT_GE(SDecision, 0);

  // Two same-severity findings; the profiled one is listed second but
  // must rank first once observed cost is attributed.
  LintResult R;
  LintDiagnostic Cold;
  Cold.Id = "cold";
  Cold.Loc = SourceLocation(1, 0);
  LintDiagnostic Hot;
  Hot.Id = "hot";
  Hot.Loc = SourceLocation(2, 0);
  Hot.Decision = SDecision;
  R.Diagnostics = {Cold, Hot};

  LintProfile P = loadProfile(
      "{\"decisions\":[{\"decision\":" + std::to_string(SDecision) +
      ",\"rule\":\"s\",\"decisionInRule\":0,\"events\":100,\"totalK\":250,"
      "\"maxK\":4,\"backtrackEvents\":3,\"backtrackTotalK\":30,"
      "\"altEvents\":[]}]}");
  applyProfile(R, P, *AG);
  ASSERT_EQ(R.Diagnostics.size(), 2u);
  EXPECT_EQ(R.Diagnostics[0].Id, "hot");
  EXPECT_TRUE(R.Diagnostics[0].hasHotness());
  EXPECT_EQ(R.Diagnostics[0].HotEvents, 100);
  EXPECT_EQ(R.Diagnostics[0].HotMaxK, 4);
  EXPECT_EQ(R.Diagnostics[0].HotBacktracks, 3);
  EXPECT_EQ(R.Diagnostics[0].HotScore, 250 + 10 * 30);
  EXPECT_FALSE(R.Diagnostics[1].hasHotness());
}

//===----------------------------------------------------------------------===//
// ParserStats JSON: fixed key order, stable decision identity
//===----------------------------------------------------------------------===//

TEST(ParserStatsJson, FixedKeyOrderAndDecisionKeys) {
  auto AG = analyzeOrFail(ReorderGrammar);
  ASSERT_TRUE(AG);
  ParserStats S;
  S.ensure(AG->numDecisions());
  S.Decisions[0].record(/*K=*/2, /*Backtracked=*/false, /*Alt=*/2);
  S.Decisions[0].record(/*K=*/1, /*Backtracked=*/true, /*Alt=*/1);
  std::vector<DecisionKey> Keys = AG->decisionKeys();
  std::string J = S.json(/*IncludeDecisions=*/true, &Keys);

  // The documented top-level key order is fixed so profiles diff cleanly.
  size_t Last = 0;
  for (const char *Key :
       {"\"decisionsCovered\"", "\"avgLookahead\"", "\"maxLookahead\"",
        "\"backtrackEvents\"", "\"synPredEvals\"", "\"tokensConsumed\"",
        "\"nodesReused\"", "\"decisions\""}) {
    size_t At = J.find(Key);
    ASSERT_NE(At, std::string::npos) << Key << " missing in " << J;
    EXPECT_GT(At, Last) << Key << " out of order in " << J;
    Last = At;
  }
  // Per-decision entries carry the stable identity quadruple in order.
  Last = J.find("\"decisions\"");
  for (const char *Key : {"\"decision\"", "\"rule\"", "\"decisionInRule\"",
                          "\"line\"", "\"column\"", "\"events\"", "\"totalK\"",
                          "\"maxK\"", "\"altEvents\""}) {
    size_t At = J.find(Key, Last);
    ASSERT_NE(At, std::string::npos) << Key << " missing in " << J;
    Last = At;
  }
  // altEvents is 1-based alt counts stored 0-based: alt 1 then alt 2.
  EXPECT_NE(J.find("\"altEvents\":[1,1]"), std::string::npos) << J;
  // A profile round-trips: the emitted JSON is directly loadable.
  LintProfile P = loadProfile(J);
  EXPECT_EQ(P.totalEvents(), 2);
  EXPECT_EQ(P.entries()[0].Rule, Keys[0].Rule);
}

} // namespace
