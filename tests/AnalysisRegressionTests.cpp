//===- tests/AnalysisRegressionTests.cpp - Pinned analyzer behaviors ------===//
//
// Regression tests for subtle behaviors of the DFA construction that were
// debugged during development. Each test documents the failure mode it
// guards against.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

// Guard: predicates reached through the empty-stack wildcard pop must not
// gate the decision. Here the follow context of rule `arg` contains a
// predicate from rule `other`; without AfterWildcard suppression, the exit
// alternative of arg's loop would be gated by {q}? and inputs where q is
// false would misparse.
TEST(AnalysisRegression, ForeignPredicatesNotHoistedAcrossWildcard) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : arg ';' ;
other : arg {q}? X ;
arg : A* ;
A:'a'; X:'x';
)");
  ASSERT_TRUE(AG);
  SemanticEnv Env;
  Env.definePredicate("q", [] { return false; }); // hostile predicate
  EXPECT_TRUE(parses(*AG, "aaa;", "s", &Env));
  EXPECT_TRUE(parses(*AG, ";", "s", &Env));
}

// Guard: a predicate found on only ONE closure path of an alternative must
// not be treated as that alternative's gate (dominance requirement).
// declSpecifier-style: the predicated ID path and the keyword path belong
// to the same alternative.
TEST(AnalysisRegression, NonDominatingPredicateDoesNotGate) {
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
decl : spec+ name ';' ;
spec : 'int' | {isType}? ID ;
name : ID ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  SemanticEnv Env;
  Env.definePredicate("isType", [] { return false; });
  // 'int x;' must parse even though isType is false: the keyword path of
  // spec is not gated.
  EXPECT_TRUE(parses(*AG, "int x ;", "decl", &Env));
}

// Guard: every rule can be a start rule, so end-of-input must be part of
// each rule's follow even when the rule has call sites elsewhere.
TEST(AnalysisRegression, EofContinuationAlwaysAvailable) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a B ;
a : A | A A ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  // Parsing `a` standalone: "a" must pick alternative 1 on EOF even though
  // a's only call site is followed by B.
  EXPECT_TRUE(parses(*AG, "a", "a"));
  EXPECT_TRUE(parses(*AG, "aa", "a"));
  EXPECT_TRUE(parses(*AG, "ab", "s"));
}

// Guard: ambiguity resolution removes only the *conflicting*
// configurations of losing alternatives, not the whole alternative —
// non-conflicting continuations must stay viable. (The (B?)* C case: the
// exit alternative conflicts on B but must keep its C edge.)
TEST(AnalysisRegression, PartialConflictKeepsViableContinuations) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
a : (B?)* C ;
B:'b'; C:'c';
)",
                             Diags);
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "c"));
  EXPECT_TRUE(parses(*AG, "bbbc"));
}

// Guard: ordinary predicate-resolved states must keep expanding terminal
// edges (only overflow-forced resolutions are terminal). The precedence
// loop relies on this: the token ('*' vs EOF) must be consulted before the
// precedence predicate.
TEST(AnalysisRegression, PredicateResolvedStatesKeepTerminalEdges) {
  auto AG = analyzeOrFail(R"(
grammar E;
e : e '*' e | e '+' e | INT ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  // "7" alone: the loop decision must exit on EOF although the precedence
  // predicate for '*' (p<=2 with p=0) would be true.
  EXPECT_EQ(parseToString(*AG, "7", "e"), "(e 7)");
  EXPECT_EQ(parseToString(*AG, "1 * 2", "e"), "(e 1 * (e 2))");
}

// Guard: EOF self-loop edges in the DFA must not hang prediction (configs
// sitting at the synthetic EOF state map to themselves on EOF).
TEST(AnalysisRegression, EofSelfLoopDoesNotHang) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : {p1}? B | {p2}? B ;
B:'b';
)");
  ASSERT_TRUE(AG);
  SemanticEnv Env;
  Env.definePredicate("p1", [] { return false; });
  Env.definePredicate("p2", [] { return true; });
  EXPECT_EQ(parseToString(*AG, "b", "a", &Env), "(a b)");
}

// Guard: the LL(1) fallback must clear state from the aborted full
// construction; stale accept-state ids produced garbage predictions.
TEST(AnalysisRegression, FallbackStateIsClean) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a 'c' | a 'd' ;
a : 'a' a | 'b' ;
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "s");
  ASSERT_TRUE(AG->dfa(D).usedFallback());
  for (size_t S = 0; S < AG->dfa(D).numStates(); ++S) {
    int32_t Alt = AG->dfa(D).state(int32_t(S)).PredictedAlt;
    EXPECT_TRUE(Alt == -1 || (Alt >= 1 && Alt <= 2))
        << "garbage alt " << Alt;
  }
}

// Guard: identical subtrees in different alternatives (shared suffix
// states) must map to one accept per alternative and prediction stays
// consistent under the interning of DFA states.
TEST(AnalysisRegression, StateInterningConsistent) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : B c | D c ;
c : C ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  int32_t D = decisionOf(*AG, "a");
  EXPECT_EQ(predictSeq(*AG, D, {"B"}), 1);
  EXPECT_EQ(predictSeq(*AG, D, {"D"}), 2);
  EXPECT_TRUE(parses(*AG, "bc"));
  EXPECT_TRUE(parses(*AG, "dc"));
}

// Guard: dangling else resolves greedily (to the nearest if), with the
// ambiguity warning, matching every practical C-family parser.
TEST(AnalysisRegression, DanglingElseBindsNearest) {
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(R"(
grammar T;
s : 'if' C s ('else' s)? | X ;
C:'c'; X:'x';
)",
                             Diags);
  ASSERT_TRUE(AG);
  EXPECT_EQ(parseToString(*AG, "ifcifcxelsex", "s"),
            "(s if c (s if c (s x) else (s x)))");
}

// Guard: a rule invoked from two different contexts must not leak context
// between them (precise stacks while non-empty): after `b` inside `s1` the
// follow is X, inside `s2` it is Y.
TEST(AnalysisRegression, PreciseStacksSeparateCallSites) {
  auto AG = analyzeOrFail(R"(
grammar T;
top : s1 | s2 ;
s1 : A b X ;
s2 : B b Y ;
b : P | P Q ;
A:'a'; B:'b'; P:'p'; Q:'q'; X:'x'; Y:'y';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "apx", "top"));
  EXPECT_TRUE(parses(*AG, "apqx", "top"));
  EXPECT_TRUE(parses(*AG, "bpy", "top"));
  EXPECT_TRUE(parses(*AG, "bpqy", "top"));
  EXPECT_FALSE(parses(*AG, "apy", "top"));
}

// Guard: resolution order for gated predicates — predicated alternatives
// are tried in alternative order and the lowest unpredicated alternative
// is the default, consulted last.
TEST(AnalysisRegression, GatedPredicateOrdering) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : {p1}? x | {p2}? y | z ;
x : A ; y : A ; z : A ;
A:'a';
)");
  ASSERT_TRUE(AG);
  struct Case {
    bool P1, P2;
    const char *Expect;
  } Cases[] = {{true, true, "(s (x a))"},
               {false, true, "(s (y a))"},
               {false, false, "(s (z a))"},
               {true, false, "(s (x a))"}};
  for (const Case &C : Cases) {
    SemanticEnv Env;
    Env.definePredicate("p1", [&] { return C.P1; });
    Env.definePredicate("p2", [&] { return C.P2; });
    EXPECT_EQ(parseToString(*AG, "a", "s", &Env), C.Expect)
        << "p1=" << C.P1 << " p2=" << C.P2;
  }
}

// Guard: the closure blow-up land mine aborts to the fallback instead of
// hanging or exhausting memory.
TEST(AnalysisRegression, ClosureLandMineFallsBack) {
  // Many mutually referencing nullable rules multiply closure paths.
  std::string Text = "grammar T;\n";
  Text += "s : ";
  for (int I = 0; I < 8; ++I)
    Text += (I ? "| " : "") + std::string("r") + std::to_string(I) + " X ";
  Text += ";\n";
  for (int I = 0; I < 8; ++I) {
    Text += "r" + std::to_string(I) + " : ";
    for (int J = 0; J < 8; ++J) {
      if (J)
        Text += " | ";
      Text += "A r" + std::to_string((I + J) % 8);
    }
    Text += " | A ;\n";
  }
  Text += "A:'a'; X:'x';\n";
  DiagnosticEngine Diags;
  auto AG = analyzeWithDiags(Text, Diags);
  ASSERT_TRUE(AG) << Diags.str();
  // Analysis completed (no hang); the s decision fell back.
  int32_t D = decisionOf(*AG, "s");
  EXPECT_TRUE(AG->dfa(D).usedFallback() ||
              AG->dfa(D).decisionClass() != DecisionClass::FixedK ||
              AG->dfa(D).fixedK() >= 1);
}

} // namespace
