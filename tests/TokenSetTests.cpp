//===- tests/TokenSetTests.cpp - Wildcard and not-set tests ---------------===//
//
// Parser-rule token sets: the wildcard `.` (any token but EOF) and the
// negated sets `~X` / `~(A|B)`, including the error-sync idiom
// `garbage : ~';'* ';'` and tree utilities.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "peg/PackratParser.h"
#include "runtime/TreeUtils.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

TEST(TokenSet, WildcardMatchesAnyTokenButEof) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : A . C ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "abc"));
  EXPECT_TRUE(parses(*AG, "aac"));
  EXPECT_TRUE(parses(*AG, "acc"));
  EXPECT_FALSE(parses(*AG, "ac")); // '.' cannot match EOF or be skipped
}

TEST(TokenSet, NegatedSingleToken) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : ~B B ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "ab"));
  EXPECT_TRUE(parses(*AG, "cb"));
  EXPECT_FALSE(parses(*AG, "bb"));
}

TEST(TokenSet, NegatedGroup) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : ~(A | 'x') D ;
A:'a'; B:'b'; D:'d'; X:'x';
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "bd"));
  EXPECT_TRUE(parses(*AG, "dd"));
  EXPECT_FALSE(parses(*AG, "ad"));
  EXPECT_FALSE(parses(*AG, "xd"));
}

TEST(TokenSet, ErrorSyncIdiom) {
  // Skip-to-semicolon garbage recovery, expressible only with not-sets.
  auto AG = analyzeOrFail(R"(
grammar T;
prog : item* EOF ;
item : 'ok' ';' | garbage ;
garbage : ~';'+ ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  EXPECT_TRUE(parses(*AG, "ok ; junk 1 2 x ; ok ;", "prog"));
  EXPECT_TRUE(parses(*AG, "a b c ;", "prog"));
  EXPECT_FALSE(parses(*AG, "ok ; dangling", "prog"));
}

TEST(TokenSet, WildcardStarIsGreedyButBounded) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : 'begin' .* 'end' EOF ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  // .* must stop before the final 'end' to let the rule complete; the loop
  // decision sees the conflict and resolution keeps the parse viable via
  // lookahead.
  EXPECT_TRUE(parses(*AG, "begin a b c end"));
  EXPECT_TRUE(parses(*AG, "begin end"));
}

TEST(TokenSet, PackratAgreesOnSets) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : ~B+ B ;
A:'a'; B:'b'; C:'c';
)");
  ASSERT_TRUE(AG);
  for (const char *Input : {"ab", "acacb", "b", "aa"}) {
    TokenStream S1 = lexOrFail(*AG, Input);
    DiagnosticEngine D1;
    LLStarParser P1(*AG, S1, nullptr, D1);
    P1.parse("s");

    TokenStream S2 = lexOrFail(*AG, Input);
    DiagnosticEngine D2;
    PackratParser P2(AG->grammar(), S2, nullptr, D2);
    P2.parse("s");
    EXPECT_EQ(P1.ok(), P2.ok()) << Input;
  }
}

TEST(TokenSet, GrammarPrinting) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : . ~A ~(A|B) ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  std::string S = AG->grammar().str();
  EXPECT_NE(S.find(". ~(A) ~(A|B)"), std::string::npos) << S;
}

TEST(TreeUtils, WalkCollectTextDepth) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : a a ;
a : A B ;
A:'a'; B:'b';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "abab");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  auto Tree = P.parse("s");
  ASSERT_TRUE(P.ok());

  // Enter/exit pairing.
  int Enters = 0, Exits = 0;
  TreeListener L;
  L.Enter = [&](const ParseTree &) {
    ++Enters;
    return true;
  };
  L.Exit = [&](const ParseTree &) { ++Exits; };
  walkTree(*Tree, L);
  EXPECT_EQ(Enters, Exits);
  EXPECT_EQ(size_t(Enters), Tree->size());

  // Rule collection in document order.
  auto As = collectRuleNodes(*Tree, AG->grammar().findRule("a"));
  EXPECT_EQ(As.size(), 2u);

  EXPECT_EQ(treeText(*Tree), "a b a b");
  EXPECT_EQ(treeDepth(*Tree), 3u); // s -> a -> token

  // Subtree pruning via Enter returning false.
  int Visited = 0;
  TreeListener Prune;
  Prune.Enter = [&](const ParseTree &N) {
    ++Visited;
    return N.isToken() || N.ruleIndex() != AG->grammar().findRule("a");
  };
  walkTree(*Tree, Prune);
  EXPECT_EQ(Visited, 3); // s + two pruned a nodes

  // Renderings.
  std::string Indented = treeToIndentedString(*Tree, AG->grammar());
  EXPECT_NE(Indented.find("s\n  a\n"), std::string::npos) << Indented;
  std::string Dot = treeToDot(*Tree, AG->grammar());
  EXPECT_EQ(Dot.find("digraph"), 0u);
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

} // namespace
