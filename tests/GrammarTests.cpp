//===- tests/GrammarTests.cpp - Meta-language front-end tests -------------===//

#include "grammar/GrammarLexer.h"
#include "grammar/GrammarParser.h"

#include <gtest/gtest.h>

using namespace llstar;

namespace {

std::unique_ptr<Grammar> parseOrFail(const std::string &Text) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(Text, Diags);
  EXPECT_TRUE(G) << Diags.str();
  return G;
}

TEST(MetaLexer, TokenKinds) {
  DiagnosticEngine Diags;
  auto Tokens = lexGrammarText(
      "grammar T; a : B 'lit' {act} {p}? (x)=> [0-9] -> .. . ~ | * + ? ;",
      Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  std::vector<MetaKind> Kinds;
  for (const MetaToken &T : Tokens)
    Kinds.push_back(T.Kind);
  std::vector<MetaKind> Expected = {
      MetaKind::Ident,   MetaKind::Ident,  MetaKind::Semi,
      MetaKind::Ident,   MetaKind::Colon,  MetaKind::Ident,
      MetaKind::StrLit,  MetaKind::Action, MetaKind::Action,
      MetaKind::Question, MetaKind::LParen, MetaKind::Ident,
      MetaKind::RParen,  MetaKind::DArrow, MetaKind::CharSet,
      MetaKind::Arrow,   MetaKind::Range,  MetaKind::Dot,
      MetaKind::Tilde,   MetaKind::Pipe,   MetaKind::Star,
      MetaKind::Plus,    MetaKind::Question, MetaKind::Semi,
      MetaKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(MetaLexer, CommentsAndEscapes) {
  DiagnosticEngine Diags;
  auto Tokens = lexGrammarText(
      "// line comment\n/* block\ncomment */ 'a\\nb' {{always}}", Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.str();
  ASSERT_EQ(Tokens.size(), 3u); // string, action, EOF
  EXPECT_EQ(Tokens[0].Text, "a\nb");
  EXPECT_TRUE(Tokens[1].DoubleBrace);
  EXPECT_EQ(Tokens[1].Text, "always");
}

TEST(GrammarParser, BasicStructure) {
  auto G = parseOrFail(R"(
grammar Demo;
s : a B | C ;
a : 'x' ;
B : 'b' ;
C : 'c' ;
)");
  ASSERT_TRUE(G);
  EXPECT_EQ(G->Name, "Demo");
  EXPECT_EQ(G->numRules(), 2u); // s and a (lexer rules are not Rule objects)
  EXPECT_EQ(G->findRule("s"), 0);
  EXPECT_EQ(G->findRule("a"), 1);
  EXPECT_EQ(G->rule(0).Alts.size(), 2u);
  // Tokens: 'x' literal, B, C.
  EXPECT_NE(G->vocabulary().lookupLiteral("x"), TokenInvalid);
  EXPECT_NE(G->vocabulary().lookup("B"), TokenInvalid);
}

TEST(GrammarParser, ForwardReferencesWork) {
  auto G = parseOrFail(R"(
grammar T;
a : b ;
b : C ;
C : 'c' ;
)");
  ASSERT_TRUE(G);
  const Element &E = G->rule(0).Alts[0].Elements[0];
  EXPECT_EQ(E.Kind, ElementKind::RuleRef);
  EXPECT_EQ(E.RuleIndex, G->findRule("b"));
}

TEST(GrammarParser, UndefinedRuleIsError) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText("grammar T; a : missing ; B : 'b' ;", Diags);
  EXPECT_EQ(G, nullptr);
  EXPECT_TRUE(Diags.contains("undefined rule 'missing'")) << Diags.str();
}

TEST(GrammarParser, LeftRecursionRejectedByValidate) {
  DiagnosticEngine Diags;
  // Indirect left recursion: a -> b -> a.
  auto G = parseGrammarText(R"(
grammar T;
a : b X ;
b : a Y | Z ;
X:'x'; Y:'y'; Z:'z';
)",
                            Diags);
  EXPECT_EQ(G, nullptr);
  EXPECT_TRUE(Diags.contains("left-recursive")) << Diags.str();
}

TEST(GrammarParser, OptionsParsed) {
  auto G = parseOrFail(R"(
grammar T;
options { backtrack=true; memoize=false; m=3; maxDfaStates=99; }
a : B ;
B : 'b' ;
)");
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->Options.Backtrack);
  EXPECT_FALSE(G->Options.Memoize);
  EXPECT_EQ(G->Options.MaxRecursionDepth, 3);
  EXPECT_EQ(G->Options.MaxDfaStates, 99);
}

TEST(GrammarParser, UnknownOptionWarns) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(
      "grammar T; options { output=AST; } a : B ; B : 'b' ;", Diags);
  EXPECT_TRUE(G);
  EXPECT_TRUE(Diags.contains("unknown option")) << Diags.str();
}

TEST(GrammarParser, TokensBlockDeclaresTypes) {
  auto G = parseOrFail(R"(
grammar T;
tokens { IMPORTED; OTHER; }
a : IMPORTED OTHER ;
)");
  ASSERT_TRUE(G);
  EXPECT_NE(G->vocabulary().lookup("IMPORTED"), TokenInvalid);
  EXPECT_NE(G->vocabulary().lookup("OTHER"), TokenInvalid);
}

TEST(GrammarParser, EbnfSuffixesOnAtoms) {
  auto G = parseOrFail(R"(
grammar T;
a : B* c? D+ ;
c : C ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(G);
  const auto &Elements = G->rule(0).Alts[0].Elements;
  ASSERT_EQ(Elements.size(), 3u);
  EXPECT_EQ(Elements[0].Kind, ElementKind::Block);
  EXPECT_EQ(Elements[0].Repeat, BlockRepeat::Star);
  EXPECT_EQ(Elements[1].Repeat, BlockRepeat::Optional);
  EXPECT_EQ(Elements[2].Repeat, BlockRepeat::Plus);
}

TEST(GrammarParser, SynPredCreatesFragmentRule) {
  auto G = parseOrFail(R"(
grammar T;
t : (B C)=> B C | B D ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(G);
  // One user rule + one hidden fragment.
  ASSERT_EQ(G->numRules(), 2u);
  const Rule &Frag = G->rule(1);
  EXPECT_TRUE(Frag.IsSynPredFragment);
  const Element &E = G->rule(0).Alts[0].Elements[0];
  EXPECT_EQ(E.Kind, ElementKind::SynPred);
  EXPECT_EQ(E.SynPredRule, Frag.Index);
}

TEST(GrammarParser, PredicatesAndActions) {
  auto G = parseOrFail(R"(
grammar T;
a : {isFoo}? B {doThing} {{always}} ;
B : 'b' ;
)");
  ASSERT_TRUE(G);
  const auto &Elements = G->rule(0).Alts[0].Elements;
  ASSERT_EQ(Elements.size(), 4u);
  EXPECT_EQ(Elements[0].Kind, ElementKind::SemPred);
  EXPECT_EQ(Elements[0].Name, "isFoo");
  EXPECT_EQ(Elements[2].Kind, ElementKind::Action);
  EXPECT_FALSE(Elements[2].AlwaysAction);
  EXPECT_EQ(Elements[3].Kind, ElementKind::Action);
  EXPECT_TRUE(Elements[3].AlwaysAction);
}

TEST(GrammarParser, LexerFragmentsInline) {
  auto G = parseOrFail(R"(
grammar T;
n : NUM ;
NUM : DIGIT+ ('.' DIGIT+)? ;
fragment DIGIT : [0-9] ;
)");
  ASSERT_TRUE(G);
  // Fragment produces no token rule of its own; the '.' is part of NUM's
  // regex, not an implicit parser literal. Only NUM remains.
  EXPECT_EQ(G->lexerSpec().Rules.size(), 1u);
}

TEST(GrammarParser, RecursiveLexerRuleRejected) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText(R"(
grammar T;
n : A ;
A : 'x' B ;
B : 'y' A ;
)",
                            Diags);
  EXPECT_EQ(G, nullptr);
  EXPECT_TRUE(Diags.contains("recursive")) << Diags.str();
}

TEST(GrammarParser, CharSetsRangesAndNegation) {
  auto G = parseOrFail(R"(
grammar T;
s : STR ;
STR : '"' (~["\\] | '\\' .)* '"' ;
HEX : '0' ('x'|'X') ('a'..'f' | [0-9])+ ;
)");
  ASSERT_TRUE(G);
  EXPECT_EQ(G->lexerSpec().Rules.size(), 2u);
}

TEST(GrammarParser, RuleRedefinitionIsError) {
  DiagnosticEngine Diags;
  auto G = parseGrammarText("grammar T; a : B ; a : C ; B:'b'; C:'c';",
                            Diags);
  EXPECT_EQ(G, nullptr);
  EXPECT_TRUE(Diags.contains("redefined")) << Diags.str();
}

TEST(GrammarParser, EmptyAlternativeAllowed) {
  auto G = parseOrFail(R"(
grammar T;
a : B | ;
B : 'b' ;
)");
  ASSERT_TRUE(G);
  EXPECT_EQ(G->rule(0).Alts.size(), 2u);
  EXPECT_TRUE(G->rule(0).Alts[1].Elements.empty());
  EXPECT_TRUE(G->ruleIsNullable(0));
}

TEST(GrammarParser, NullabilityComputation) {
  auto G = parseOrFail(R"(
grammar T;
a : b c ;
b : B? ;
c : C* ;
d : D ;
B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(G);
  EXPECT_TRUE(G->ruleIsNullable(G->findRule("a")));
  EXPECT_TRUE(G->ruleIsNullable(G->findRule("b")));
  EXPECT_TRUE(G->ruleIsNullable(G->findRule("c")));
  EXPECT_FALSE(G->ruleIsNullable(G->findRule("d")));
}

TEST(GrammarParser, GrammarPrinting) {
  auto G = parseOrFail(R"(
grammar T;
a : B c* | {p}? C ;
c : C ;
B:'b'; C:'c';
)");
  ASSERT_TRUE(G);
  std::string S = G->str();
  EXPECT_NE(S.find("a : B (c)* | {p}? C ;"), std::string::npos) << S;
}

TEST(GrammarParser, ErrorRecoverySkipsToNextRule) {
  DiagnosticEngine Diags;
  // First rule is malformed; parser must still see the second.
  auto G = parseGrammarText(R"(
grammar T;
a : ) ;
b : B ;
B : 'b' ;
)",
                            Diags);
  EXPECT_EQ(G, nullptr); // errors reported
  EXPECT_TRUE(Diags.hasErrors());
  // But not a cascade of bogus errors about rule b.
  EXPECT_LE(Diags.errorCount(), 2u) << Diags.str();
}

} // namespace
