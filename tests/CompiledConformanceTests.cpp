//===- tests/CompiledConformanceTests.cpp - Compiled-path conformance -----===//
//
// The compiled fast path (compiled/CompiledParser.h) is contractually
// identical to the interpreting runtime: same verdicts, byte-identical
// trees and diagnostics, identical ParserStats. This suite enforces the
// contract three ways:
//
//   - differentially over the whole fuzz corpus (tests/corpus/*.g, the
//     same sampled sentences + mutants FuzzRegressionTests replays),
//     with and without error recovery,
//   - against the recovery golden snapshots of the shipped grammars
//     (tests/golden/recovery/*.txt), heap and arena trees both,
//   - through the checked-in compiled modules: every shipped grammar must
//     hash-match its registered module (stale modules fail here *and* in
//     the CI regen-diff gate), the module lexer must tokenize identically
//     to the spec-compiled lexer, and parses through the module's static
//     tables + native predictors must match the interpreter.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "codegen/Serializer.h"
#include "compiled/CompiledParser.h"
#include "compiled/CompiledRegistry.h"
#include "fuzz/SentenceGen.h"
#include "fuzz/SentenceSampler.h"
#include "runtime/Arena.h"

#include "CompiledManifest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace llstar;
using namespace llstar::test;

namespace {

std::string slurp(const std::filesystem::path &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Out;
  Out << In.rdbuf();
  return Out.str();
}

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  auto Dir = std::filesystem::path(LLSTAR_SOURCE_DIR) / "tests" / "corpus";
  for (const auto &Entry : std::filesystem::directory_iterator(Dir))
    if (Entry.path().extension() == ".g")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

// Deterministic per-file sampler seed, independent of directory order
// (same scheme as FuzzRegressionTests so the suites replay comparable
// sentence sets).
uint64_t fileSeed(const std::filesystem::path &Path) {
  uint64_t H = 0xcbf29ce484222325ull; // FNV-1a
  for (char C : Path.filename().string())
    H = (H ^ uint64_t(uint8_t(C))) * 0x100000001b3ull;
  return H;
}

std::vector<Token> lex(const AnalyzedGrammar &AG, const std::string &Input) {
  DiagnosticEngine Diags;
  Lexer L(AG.grammar().lexerSpec(), Diags);
  return L.tokenize(Input, Diags);
}

/// Everything observable from one parse, for differential comparison.
struct Capture {
  bool Ok = false;
  bool DeadlineHit = false;
  std::string DiagText;
  std::string HeapTree;
  std::string ArenaTree;
  size_t HeapErrorNodes = 0;
  std::string StatsJson; ///< full per-decision stats, serialized
};

ParserOptions baseOptions(const AnalyzedGrammar &AG, bool Recover) {
  ParserOptions Opts;
  Opts.Memoize = AG.grammar().Options.Memoize;
  Opts.Recover = Recover;
  return Opts;
}

Capture runInterpreted(const AnalyzedGrammar &AG, const std::string &Input,
                       bool Recover) {
  Capture C;
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    LLStarParser P(AG, Stream, nullptr, Diags, baseOptions(AG, Recover));
    auto Tree = P.parse();
    C.Ok = P.ok();
    C.DeadlineHit = P.deadlineExpired();
    C.DiagText = Diags.str();
    C.StatsJson = P.stats().json(/*IncludeDecisions=*/true);
    if (Tree) {
      C.HeapTree = Tree->str(AG.grammar());
      C.HeapErrorNodes = Tree->numErrorNodes();
    }
  }
  {
    TokenStream Stream(lex(AG, Input));
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts = baseOptions(AG, Recover);
    Opts.TreeArena = &TreeArena;
    LLStarParser P(AG, Stream, nullptr, Diags, Opts);
    P.parse();
    if (P.arenaTree())
      C.ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
  }
  return C;
}

Capture runCompiled(const AnalyzedGrammar &AG,
                    const compiled::TablesView &View,
                    const compiled::NativePredictFn *Native,
                    const std::string &Input, bool Recover,
                    const Lexer *LexOverride = nullptr,
                    const compiled::NativeRuleFn *Rules = nullptr) {
  auto Tokenize = [&] {
    if (!LexOverride)
      return lex(AG, Input);
    DiagnosticEngine Diags;
    return LexOverride->tokenize(Input, Diags);
  };
  Capture C;
  {
    TokenStream Stream(Tokenize());
    DiagnosticEngine Diags;
    compiled::CompiledParser P(AG, View, Stream, nullptr, Diags,
                               baseOptions(AG, Recover), Native, Rules);
    auto Tree = P.parse();
    C.Ok = P.ok();
    C.DeadlineHit = P.deadlineExpired();
    C.DiagText = Diags.str();
    C.StatsJson = P.stats().json(/*IncludeDecisions=*/true);
    if (Tree) {
      C.HeapTree = Tree->str(AG.grammar());
      C.HeapErrorNodes = Tree->numErrorNodes();
    }
  }
  {
    TokenStream Stream(Tokenize());
    DiagnosticEngine Diags;
    Arena TreeArena;
    ParserOptions Opts = baseOptions(AG, Recover);
    Opts.TreeArena = &TreeArena;
    compiled::CompiledParser P(AG, View, Stream, nullptr, Diags, Opts,
                               Native, Rules);
    P.parse();
    if (P.arenaTree())
      C.ArenaTree = P.arenaTree()->str(AG.grammar(), Stream);
  }
  return C;
}

void expectIdentical(const Capture &Int, const Capture &Cmp,
                     const std::string &Context) {
  EXPECT_EQ(Int.Ok, Cmp.Ok) << Context;
  EXPECT_EQ(Int.DeadlineHit, Cmp.DeadlineHit) << Context;
  EXPECT_EQ(Int.DiagText, Cmp.DiagText) << Context;
  EXPECT_EQ(Int.HeapTree, Cmp.HeapTree) << Context;
  EXPECT_EQ(Int.ArenaTree, Cmp.ArenaTree) << Context;
  EXPECT_EQ(Int.HeapErrorNodes, Cmp.HeapErrorNodes) << Context;
  EXPECT_EQ(Int.StatsJson, Cmp.StatsJson) << Context;
}

//===----------------------------------------------------------------------===//
// Differential replay over the fuzz corpus
//===----------------------------------------------------------------------===//

class CompiledCorpusConformance
    : public ::testing::TestWithParam<std::filesystem::path> {};

TEST_P(CompiledCorpusConformance, MatchesInterpreterOnSampledSentences) {
  const std::filesystem::path &Path = GetParam();
  auto AG = analyzeOrFail(slurp(Path));
  ASSERT_TRUE(AG);
  compiled::CompiledTables Tables = compiled::CompiledTables::build(*AG);

  fuzz::SentenceSampler Sampler(AG->grammar(), fileSeed(Path));
  for (int S = 0; S < 8; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    std::vector<std::string> Inputs{fuzz::SentenceSampler::render(Tokens)};
    for (int M = 0; M < 2; ++M)
      Inputs.push_back(
          fuzz::SentenceSampler::render(Sampler.mutate(Tokens)));
    for (const std::string &Input : Inputs) {
      for (bool Recover : {false, true}) {
        Capture Int = runInterpreted(*AG, Input, Recover);
        Capture Cmp = runCompiled(*AG, Tables.view(), nullptr, Input, Recover);
        expectIdentical(Int, Cmp,
                        Path.filename().string() + (Recover ? " [recover] <"
                                                            : " <") +
                            Input + ">");
      }
    }
  }
}

std::string corpusTestName(
    const ::testing::TestParamInfo<std::filesystem::path> &Info) {
  std::string Name = Info.param.stem().string();
  for (char &C : Name)
    if (!std::isalnum(uint8_t(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, CompiledCorpusConformance,
                         ::testing::ValuesIn(corpusFiles()), corpusTestName);

//===----------------------------------------------------------------------===//
// Golden recovered-tree snapshots (shipped grammars)
//===----------------------------------------------------------------------===//

struct GoldenCase {
  const char *Grammar;
  const char *Input;
};

// Same cases RecoveryTests pins for the interpreter; the compiled path
// must reproduce the committed snapshots byte for byte.
const GoldenCase GoldenCases[] = {
    {"csv", "a,b\n\"x\" y,c\n"},
    {"dot", "digraph g { a -> -> b ; x = ; }"},
    {"ini", "[a]\nx 1\n[b\ny = 2\n"},
    {"json", "{\"a\": 1 \"b\": 2,}"},
    {"lambda", "lambda x (x"},
    {"lua", "x = = 1"},
    {"sexpr", "(a b)) (c"},
};

TEST(CompiledConformance, GoldenRecoveredTreesMatchSnapshots) {
  for (const GoldenCase &C : GoldenCases) {
    SCOPED_TRACE(C.Grammar);
    std::string Text = slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) /
                             "grammars" / (std::string(C.Grammar) + ".g"));
    ASSERT_FALSE(Text.empty());
    auto AG = analyzeOrFail(Text);
    ASSERT_TRUE(AG);
    compiled::CompiledTables Tables = compiled::CompiledTables::build(*AG);

    Capture Cmp =
        runCompiled(*AG, Tables.view(), nullptr, C.Input, /*Recover=*/true);
    EXPECT_FALSE(Cmp.Ok);
    EXPECT_GE(Cmp.HeapErrorNodes, 1u) << Cmp.HeapTree;
    EXPECT_EQ(Cmp.ArenaTree, Cmp.HeapTree);

    std::string Expected =
        slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) / "tests" / "golden" /
              "recovery" / (std::string(C.Grammar) + ".txt"));
    ASSERT_FALSE(Expected.empty());
    EXPECT_EQ(std::string(C.Input) + "\n" + Cmp.HeapTree + "\n", Expected)
        << "compiled recovery diverges from the committed golden snapshot";

    Capture Int = runInterpreted(*AG, C.Input, /*Recover=*/true);
    expectIdentical(Int, Cmp, C.Grammar);
  }
}

//===----------------------------------------------------------------------===//
// Checked-in module registry
//===----------------------------------------------------------------------===//

TEST(CompiledConformance, ShippedModulesHashMatchAndAgree) {
  compiled::registerShippedGrammars();
  for (const GoldenCase &C : GoldenCases) { // one entry per shipped grammar
    SCOPED_TRACE(C.Grammar);
    std::string Text = slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) /
                             "grammars" / (std::string(C.Grammar) + ".g"));
    auto AG = analyzeOrFail(Text);
    ASSERT_TRUE(AG);

    compiled::CompiledResolution Res =
        compiled::resolveCompiledTables(*AG, serializeGrammar(*AG));
    ASSERT_TRUE(Res.fromModule())
        << "stale compiled module for " << C.Grammar
        << "; regenerate with: llstar compile grammars/" << C.Grammar
        << ".g --emit-cpp -o grammars/compiled/" << C.Grammar
        << "_compiled.cpp";
    EXPECT_NE(Res.Native, nullptr);
    EXPECT_NE(Res.Rules, nullptr);

    // The module lexer must tokenize exactly like the spec-compiled one,
    // over decision-covering minimal sentences (guaranteed valid, so the
    // generated predictors all run hot).
    auto ModuleLex = compiled::makeModuleLexer(*Res.Module);
    fuzz::SentenceGen Gen(*AG);
    std::vector<std::string> Inputs;
    for (const auto &Seed : Gen.seeds())
      Inputs.push_back(fuzz::SentenceSampler::render(Seed));
    ASSERT_FALSE(Inputs.empty());
    if (Inputs.size() > 6)
      Inputs.resize(6);
    for (const std::string &Input : Inputs) {
      DiagnosticEngine D1;
      std::vector<Token> A = ModuleLex->tokenize(Input, D1);
      std::vector<Token> B = lex(*AG, Input);
      ASSERT_EQ(A.size(), B.size()) << Input;
      for (size_t I = 0; I < A.size(); ++I) {
        EXPECT_EQ(A[I].Type, B[I].Type);
        EXPECT_EQ(A[I].Text, B[I].Text);
        EXPECT_EQ(A[I].Loc.Line, B[I].Loc.Line);
        EXPECT_EQ(A[I].Loc.Column, B[I].Loc.Column);
      }

      // And module tables + native predictors + generated rule bodies must
      // match the interpreter.
      for (bool Recover : {false, true}) {
        Capture Int = runInterpreted(*AG, Input, Recover);
        Capture Cmp = runCompiled(*AG, Res.View, Res.Native, Input, Recover,
                                  ModuleLex.get(), Res.Rules);
        expectIdentical(Int, Cmp,
                        std::string(C.Grammar) + " <" + Input + ">");
      }
    }
    // The recovery golden input again, now through the module's static
    // tables (predicated decisions exercise the fallback walk).
    Capture Int = runInterpreted(*AG, C.Input, /*Recover=*/true);
    Capture Cmp = runCompiled(*AG, Res.View, Res.Native, C.Input,
                              /*Recover=*/true, ModuleLex.get(), Res.Rules);
    expectIdentical(Int, Cmp, std::string(C.Grammar) + " golden");
  }
}

TEST(CompiledConformance, HashGateRejectsStaleModules) {
  compiled::registerShippedGrammars();
  std::string Text = slurp(std::filesystem::path(LLSTAR_SOURCE_DIR) /
                           "grammars" / "json.g");
  auto AG = analyzeOrFail(Text);
  ASSERT_TRUE(AG);
  std::string Payload = serializeGrammar(*AG);

  const compiled::CompiledGrammarModule *M =
      compiled::findCompiledModule(AG->grammar().Name);
  ASSERT_NE(M, nullptr);

  // A module whose payload hash disagrees (a grammar edited after its last
  // --emit-cpp run) must fall back to load-time flattening.
  static compiled::CompiledGrammarModule Stale;
  Stale = *M;
  Stale.PayloadHash ^= 1;
  compiled::registerCompiledModule(Stale);
  compiled::CompiledResolution Res =
      compiled::resolveCompiledTables(*AG, Payload);
  EXPECT_FALSE(Res.fromModule());
  EXPECT_NE(Res.Owned, nullptr);
  EXPECT_EQ(Res.Native, nullptr);

  // Restore the genuine module and confirm the gate opens again.
  compiled::registerShippedGrammars();
  Res = compiled::resolveCompiledTables(*AG, Payload);
  EXPECT_TRUE(Res.fromModule());

  // An empty payload skips the registry entirely (explicit flatten).
  Res = compiled::resolveCompiledTables(*AG, "");
  EXPECT_FALSE(Res.fromModule());
}

} // namespace
