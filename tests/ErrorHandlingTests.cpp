//===- tests/ErrorHandlingTests.cpp - Diagnostics and recovery ------------===//
//
// The paper argues deterministic LL parsing gives far better error
// handling than speculating strategies (Section 1) and that LL(*) parsers
// should report prediction errors at the token that killed the lookahead
// DFA walk, not at the decision start (Section 4.4). These tests pin that
// behavior down, plus the packrat contrast and recovery basics.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "peg/PackratParser.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::test;

namespace {

TEST(Errors, DeepLookaheadErrorPosition) {
  // Given A -> a+ b | a+ c and input aaaaad, the parser should report the
  // failure at 'd' (paper's exact example, Section 4.4).
  auto AG = analyzeOrFail(R"(
grammar T;
a : A+ B | A+ C ;
A:'a'; B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "aaaaad");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("a");
  ASSERT_FALSE(P.ok());
  ASSERT_FALSE(Diags.diagnostics().empty());
  const Diagnostic &D = Diags.diagnostics().front();
  EXPECT_NE(D.Message.find("'d'"), std::string::npos) << D.str();
  // Column 5 is the 'd', not column 0 (the first 'a').
  EXPECT_EQ(D.Loc.Column, 5u) << D.str();
}

TEST(Errors, MismatchNamesExpectedToken) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : 'if' '(' ID ')' ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "if x )");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("s");
  EXPECT_FALSE(P.ok());
  EXPECT_TRUE(Diags.contains("expecting '('")) << Diags.str();
}

TEST(Errors, RecoveryDisabledFailsFast) {
  auto AG = analyzeOrFail(R"(
grammar T;
a : A B C ;
A:'a'; B:'b'; C:'c'; D:'d';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "adbc");
  DiagnosticEngine Diags;
  ParserOptions Opts;
  Opts.Recover = false;
  LLStarParser P(*AG, Stream, nullptr, Diags, Opts);
  auto Tree = P.parse("a");
  EXPECT_FALSE(P.ok());
  // Without recovery the parse stops at the first mismatch: only 'a'
  // made it into the tree.
  EXPECT_EQ(Tree->numTokens(), 1u);
}

TEST(Errors, ErrorsDoNotFireDuringSpeculation) {
  // Failed speculation must stay silent; only the committed parse reports.
  auto AG = analyzeOrFail(R"(
grammar T;
options { backtrack=true; }
s : p '.' | p '!' ;
p : '(' p ')' | ID ;
ID : [a-z]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "((x))!");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("s");
  EXPECT_TRUE(P.ok());
  // The alternative-1 speculation failed at '!', but no diagnostics leak.
  EXPECT_TRUE(Diags.empty()) << Diags.str();
}

TEST(Errors, FailedSemanticPredicateReported) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : {mustHold}? A ;
A:'a';
)");
  ASSERT_TRUE(AG);
  SemanticEnv Env;
  Env.definePredicate("mustHold", [] { return false; });
  TokenStream Stream = lexOrFail(*AG, "a");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, &Env, Diags);
  P.parse("s");
  EXPECT_FALSE(P.ok());
  EXPECT_TRUE(Diags.contains("failed predicate {mustHold}?"))
      << Diags.str();
}

TEST(Errors, UnboundPredicateWarnsOnceAndAssumesTrue) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : {unbound}? A {unbound2} ;
A:'a';
)");
  ASSERT_TRUE(AG);
  TokenStream Stream = lexOrFail(*AG, "a");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  P.parse("s");
  EXPECT_TRUE(P.ok());
  EXPECT_EQ(Diags.warningCount(), 2u) << Diags.str(); // pred + action, once each
  EXPECT_TRUE(Diags.contains("'unbound' is not bound"));
  EXPECT_TRUE(Diags.contains("'unbound2' is not bound"));
}

TEST(Errors, PackratReportsOnlyAtTheEnd) {
  // The packrat contrast (paper Section 1): same grammar, same broken
  // input; the LL(*) parser localizes the error, the packrat parser can
  // only report after speculating over everything.
  auto AG = analyzeOrFail(R"(
grammar T;
s : A B C D E ;
A:'a'; B:'b'; C:'c'; D:'d'; E:'e'; X:'x';
)");
  ASSERT_TRUE(AG);
  {
    TokenStream Stream = lexOrFail(*AG, "abxde");
    DiagnosticEngine Diags;
    LLStarParser P(*AG, Stream, nullptr, Diags);
    P.parse("s");
    EXPECT_FALSE(P.ok());
    EXPECT_TRUE(Diags.contains("mismatched input 'x' expecting C"))
        << Diags.str();
  }
  {
    TokenStream Stream = lexOrFail(*AG, "abxde");
    DiagnosticEngine Diags;
    PackratParser P(AG->grammar(), Stream, nullptr, Diags);
    P.parse("s");
    EXPECT_FALSE(P.ok());
    // Packrat failure message exists but is a coarse "parse failed".
    EXPECT_TRUE(Diags.contains("PEG parse failed")) << Diags.str();
  }
}

TEST(Errors, LexerErrorPositionsAreExact) {
  auto AG = analyzeOrFail(R"(
grammar T;
s : ID ;
ID : [a-z]+ ;
WS : [ \n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  DiagnosticEngine Diags;
  Lexer L(AG->grammar().lexerSpec(), Diags);
  DiagnosticEngine LexDiags;
  L.tokenize("abc\n  @def", LexDiags);
  ASSERT_TRUE(LexDiags.hasErrors());
  EXPECT_EQ(LexDiags.diagnostics().front().Loc, SourceLocation(2, 2));
}

TEST(Errors, MultipleStatementsRecoverIndependently) {
  auto AG = analyzeOrFail(R"(
grammar T;
prog : stmt* EOF ;
stmt : ID '=' INT ';' ;
ID : [a-z]+ ;
INT : [0-9]+ ;
WS : [ \n]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  // Second statement has a junk token; single-token deletion skips it and
  // the rest still parses.
  TokenStream Stream = lexOrFail(*AG, "a = 1 ; b = 2 2 ; c = 3 ;");
  DiagnosticEngine Diags;
  LLStarParser P(*AG, Stream, nullptr, Diags);
  auto Tree = P.parse("prog");
  EXPECT_FALSE(P.ok());
  EXPECT_EQ(Diags.errorCount(), 1u) << Diags.str();
  EXPECT_EQ(Tree->numChildren(), 4u); // 3 stmts + EOF leaf
}

} // namespace
