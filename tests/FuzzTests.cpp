//===- tests/FuzzTests.cpp - Fuzzing-harness component tests --------------===//
//
// The fuzz subsystem fuzzes the toolkit, so it needs its own tests:
//  - generator validity: every generated grammar parses and analyzes
//    cleanly (the GrammarParser round-trip);
//  - generator determinism: one seed, one grammar;
//  - sampler soundness: derived sentences are accepted by the packrat
//    oracle (and by LL(*));
//  - mutation labeling: the packrat verdict labels mutants in/out of
//    language and LL(*) always agrees on envelope grammars;
//  - the oracle actually detects disagreements (a deliberate PEG ordered-
//    choice hazard must trip the differential check);
//  - the minimizer shrinks failing inputs while preserving failure kind.
//
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "fuzz/Fuzzer.h"

#include <gtest/gtest.h>

using namespace llstar;
using namespace llstar::fuzz;
using namespace llstar::test;

namespace {

//===----------------------------------------------------------------------===//
// Grammar generator
//===----------------------------------------------------------------------===//

class GeneratorValidity : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeneratorValidity, GeneratedGrammarAnalyzes) {
  GrammarGenerator Gen(GrammarEnvelope(), GetParam());
  GeneratedGrammar G = Gen.generate();
  DiagnosticEngine Diags;
  auto AG = analyzeGrammarText(G.text(), Diags);
  ASSERT_TRUE(AG && !Diags.hasErrors())
      << "seed " << GetParam() << " produced invalid grammar:\n"
      << G.text() << Diags.str();
  // Structure sanity: a start rule plus at least MinRules parser rules.
  EXPECT_GE(G.Rules.size(), 3u);
  EXPECT_EQ(G.Rules[0].Name, "s");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorValidity,
                         ::testing::Range(uint64_t(0), uint64_t(50)));

TEST(GrammarGeneratorTest, DeterministicPerSeed) {
  GrammarEnvelope Env;
  GrammarGenerator A(Env, 12345), B(Env, 12345), C(Env, 12346);
  EXPECT_EQ(A.generate().text(), B.generate().text());
  EXPECT_NE(A.generate().text(), C.generate().text());
}

TEST(GrammarGeneratorTest, EnvelopeFlagsNarrowOutput) {
  GrammarEnvelope Env;
  Env.LeftRecursion = false;
  Env.SynPreds = Env.SemPreds = false;
  Env.Actions = false;
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    GrammarGenerator Gen(Env, Seed);
    std::string Text = Gen.generate().text();
    EXPECT_EQ(Text.find("=>"), std::string::npos) << Text;
    EXPECT_EQ(Text.find("}?"), std::string::npos) << Text;
    EXPECT_EQ(Text.find("ex :"), std::string::npos) << Text;
  }
}

//===----------------------------------------------------------------------===//
// Sentence sampler
//===----------------------------------------------------------------------===//

class SamplerSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamplerSoundness, SampledSentencesAcceptedByPackrat) {
  GrammarGenerator Gen(GrammarEnvelope(), GetParam() * 7919 + 17);
  GeneratedGrammar G = Gen.generate();
  DifferentialOracle Oracle(G.text());
  ASSERT_TRUE(Oracle.valid()) << G.text() << Oracle.grammarError();

  SentenceSampler Sampler(Oracle.analyzed().grammar(), GetParam());
  for (int S = 0; S < 6; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    OracleVerdict V = Oracle.checkSentence(SentenceSampler::render(Tokens));
    EXPECT_FALSE(V.Failed) << V.Detail;
    EXPECT_TRUE(Oracle.lastAccepted())
        << "packrat rejected a derived sentence <"
        << SentenceSampler::render(Tokens) << "> of:\n"
        << G.text();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerSoundness,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

TEST(SentenceSamplerTest, TerminatesOnLeftRecursiveRules) {
  // Deep recursion must hit the min-height fallback, not blow the stack.
  auto AG = analyzeOrFail(R"(
grammar E;
s : e EOF ;
e : e '+' e | e '*' e | '(' e ')' | INT ;
INT : [0-9]+ ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(AG);
  SentenceSampler Sampler(AG->grammar(), 3,
                          SamplerOptions{/*MaxDepth=*/4, /*MaxTokens=*/30});
  for (int I = 0; I < 50; ++I) {
    std::vector<std::string> Tokens = Sampler.sample();
    EXPECT_FALSE(Tokens.empty());
    EXPECT_LE(Tokens.size(), 200u); // budget + bounded overshoot
  }
}

TEST(SentenceSamplerTest, MutationLabelingMatchesOracles) {
  GrammarGenerator Gen(GrammarEnvelope(), 2024);
  GeneratedGrammar G = Gen.generate();
  DifferentialOracle Oracle(G.text());
  ASSERT_TRUE(Oracle.valid()) << Oracle.grammarError();

  SentenceSampler Sampler(Oracle.analyzed().grammar(), 99);
  int OutOfLanguage = 0, Checked = 0;
  for (int S = 0; S < 10; ++S) {
    std::vector<std::string> Tokens = Sampler.sample();
    for (int M = 0; M < 4; ++M) {
      std::vector<std::string> Mutant = Sampler.mutate(Tokens);
      // The packrat baseline labels the mutant; the differential check
      // inside guarantees LL(*) assigned the same label.
      OracleVerdict V =
          Oracle.checkSentence(SentenceSampler::render(Mutant));
      EXPECT_FALSE(V.Failed) << V.Detail;
      ++Checked;
      OutOfLanguage += Oracle.lastAccepted() ? 0 : 1;
    }
  }
  // Mutations must actually produce negatives, or the fuzzer only ever
  // exercises the accept path.
  EXPECT_GT(OutOfLanguage, 0);
  EXPECT_LT(OutOfLanguage, Checked); // ... and some survivors stay valid
}

//===----------------------------------------------------------------------===//
// Differential oracle
//===----------------------------------------------------------------------===//

TEST(DifferentialOracleTest, DetectsPegOrderedChoiceHazard) {
  // `e -> 'a' | 'a' 'b'` is the canonical PEG trap: ordered choice commits
  // to the first alternative, LL(*) prediction looks past it. The oracle
  // must flag the disagreement (this is the detector working, not a bug in
  // either engine — generator-envelope grammars exclude this shape).
  DifferentialOracle Oracle(R"(
grammar H;
s : e EOF ;
e : 'a' | 'a' 'b' ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(Oracle.valid()) << Oracle.grammarError();
  EXPECT_FALSE(Oracle.checkGrammar().Failed);

  OracleVerdict V = Oracle.checkSentence("a b");
  EXPECT_TRUE(V.Failed);
  EXPECT_EQ(V.Check, "accept-mismatch") << V.Detail;

  EXPECT_FALSE(Oracle.checkSentence("a").Failed);
  EXPECT_FALSE(Oracle.checkSentence("b").Failed); // both engines reject
}

TEST(DifferentialOracleTest, GrammarChecksPassOnShippedGrammars) {
  // Determinism + serializer round-trip over a real grammar from the pack.
  std::string Text = R"(
grammar J;
value : obj | arr | STR | NUM | 'true' | 'false' | 'null' ;
obj : '{' (pair (',' pair)*)? '}' ;
pair : STR ':' value ;
arr : '[' (value (',' value)*)? ']' ;
STR : '"' [a-z]* '"' ;
NUM : [0-9]+ ;
WS : [ \t\r\n]+ -> skip ;
)";
  DifferentialOracle Oracle(Text);
  ASSERT_TRUE(Oracle.valid()) << Oracle.grammarError();
  OracleVerdict V = Oracle.checkGrammar();
  EXPECT_FALSE(V.Failed) << V.Check << ": " << V.Detail;
  EXPECT_FALSE(Oracle.checkSentence(R"({ "k" : [ 1 , 2 ] })").Failed);
  EXPECT_TRUE(Oracle.lastAccepted());
  EXPECT_FALSE(Oracle.checkSentence(R"({ "k" : })").Failed);
  EXPECT_FALSE(Oracle.lastAccepted());
}

TEST(DifferentialOracleTest, InvalidGrammarReported) {
  DifferentialOracle Oracle("grammar X;\ns : undefinedRule EOF ;\n");
  EXPECT_FALSE(Oracle.valid());
  EXPECT_FALSE(Oracle.grammarError().empty());
}

//===----------------------------------------------------------------------===//
// Minimizer
//===----------------------------------------------------------------------===//

TEST(MinimizerTest, ShrinksFailingInputToTwoTokens) {
  // Star over the hazard choice: long failing inputs exist, but the
  // minimal accept-mismatch witness is exactly `a b`.
  DifferentialOracle Oracle(R"(
grammar H;
s : e* EOF ;
e : 'a' | 'a' 'b' ;
WS : [ ]+ -> skip ;
)");
  ASSERT_TRUE(Oracle.valid()) << Oracle.grammarError();
  std::vector<std::string> Failing = {"a", "a", "a", "b", "a", "a"};
  OracleVerdict V =
      Oracle.checkSentence(SentenceSampler::render(Failing));
  ASSERT_TRUE(V.Failed);
  ASSERT_EQ(V.Check, "accept-mismatch");

  std::vector<std::string> Min =
      minimizeSentence(Oracle, Failing, "accept-mismatch");
  EXPECT_EQ(SentenceSampler::render(Min), "a b");
}

TEST(MinimizerTest, DropsIrrelevantRulesAndAlternatives) {
  GeneratedGrammar G;
  G.Name = "M";
  G.Rules.push_back({"s", {"e EOF"}});
  G.Rules.push_back({"e", {"'a'", "'a' 'b'", "'zz' r9"}});
  G.Rules.push_back({"r9", {"'q' ID INT"}}); // irrelevant to the failure
  GeneratedGrammar Min = minimizeGrammar(G, "a b", "accept-mismatch");
  std::string Text = Min.text();
  EXPECT_EQ(Text.find("r9"), std::string::npos) << Text;
  EXPECT_EQ(Text.find("'zz'"), std::string::npos) << Text;
  // The two hazard alternatives must survive.
  EXPECT_NE(Text.find("'a'"), std::string::npos) << Text;
  EXPECT_NE(Text.find("'a' 'b'"), std::string::npos) << Text;
}

//===----------------------------------------------------------------------===//
// End-to-end loop
//===----------------------------------------------------------------------===//

TEST(FuzzerTest, CleanRunOverEnvelopeGrammars) {
  FuzzConfig Config;
  Config.Seed = 77;
  Config.Iterations = 25;
  Config.SentencesPerGrammar = 3;
  Config.MutationsPerSentence = 2;
  Fuzzer F(Config);
  EXPECT_EQ(F.run(), 0) << (F.failures().empty()
                                ? std::string("(no failure detail)")
                                : F.failures()[0].Detail);
  EXPECT_EQ(F.stats().Grammars, 25);
  EXPECT_EQ(F.stats().Sentences, 75);
  EXPECT_GT(F.stats().Rejected, 0);
}

TEST(FuzzerTest, DeterministicReplay) {
  FuzzConfig Config;
  Config.Seed = 31337;
  Config.Iterations = 8;
  Fuzzer A(Config), B(Config);
  A.run();
  B.run();
  EXPECT_EQ(A.stats().Accepted, B.stats().Accepted);
  EXPECT_EQ(A.stats().Rejected, B.stats().Rejected);
  EXPECT_EQ(A.stats().Failures, B.stats().Failures);
}

} // namespace
