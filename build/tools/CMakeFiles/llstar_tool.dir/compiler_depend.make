# Empty compiler generated dependencies file for llstar_tool.
# This may be replaced when dependencies are built.
