# Empty dependencies file for llstar_tool.
# This may be replaced when dependencies are built.
