file(REMOVE_RECURSE
  "CMakeFiles/llstar_tool.dir/llstar_tool.cpp.o"
  "CMakeFiles/llstar_tool.dir/llstar_tool.cpp.o.d"
  "llstar"
  "llstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
