file(REMOVE_RECURSE
  "libllstar_benchcommon.a"
)
