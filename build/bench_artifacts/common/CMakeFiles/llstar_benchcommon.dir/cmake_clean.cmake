file(REMOVE_RECURSE
  "CMakeFiles/llstar_benchcommon.dir/BenchHarness.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/BenchHarness.cpp.o.d"
  "CMakeFiles/llstar_benchcommon.dir/GrammarBasicSql.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/GrammarBasicSql.cpp.o.d"
  "CMakeFiles/llstar_benchcommon.dir/GrammarC.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/GrammarC.cpp.o.d"
  "CMakeFiles/llstar_benchcommon.dir/GrammarCSharp.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/GrammarCSharp.cpp.o.d"
  "CMakeFiles/llstar_benchcommon.dir/GrammarJava.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/GrammarJava.cpp.o.d"
  "CMakeFiles/llstar_benchcommon.dir/Workloads.cpp.o"
  "CMakeFiles/llstar_benchcommon.dir/Workloads.cpp.o.d"
  "libllstar_benchcommon.a"
  "libllstar_benchcommon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_benchcommon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
