# Empty dependencies file for llstar_benchcommon.
# This may be replaced when dependencies are built.
