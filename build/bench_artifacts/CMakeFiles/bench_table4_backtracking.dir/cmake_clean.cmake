file(REMOVE_RECURSE
  "../bench/bench_table4_backtracking"
  "../bench/bench_table4_backtracking.pdb"
  "CMakeFiles/bench_table4_backtracking.dir/bench_table4_backtracking.cpp.o"
  "CMakeFiles/bench_table4_backtracking.dir/bench_table4_backtracking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_backtracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
