# Empty dependencies file for bench_table4_backtracking.
# This may be replaced when dependencies are built.
