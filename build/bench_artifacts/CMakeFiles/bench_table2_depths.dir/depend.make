# Empty dependencies file for bench_table2_depths.
# This may be replaced when dependencies are built.
