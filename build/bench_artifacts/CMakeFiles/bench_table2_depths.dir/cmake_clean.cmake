file(REMOVE_RECURSE
  "../bench/bench_table2_depths"
  "../bench/bench_table2_depths.pdb"
  "CMakeFiles/bench_table2_depths.dir/bench_table2_depths.cpp.o"
  "CMakeFiles/bench_table2_depths.dir/bench_table2_depths.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_depths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
