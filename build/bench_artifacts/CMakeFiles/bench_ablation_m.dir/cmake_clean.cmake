file(REMOVE_RECURSE
  "../bench/bench_ablation_m"
  "../bench/bench_ablation_m.pdb"
  "CMakeFiles/bench_ablation_m.dir/bench_ablation_m.cpp.o"
  "CMakeFiles/bench_ablation_m.dir/bench_ablation_m.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
