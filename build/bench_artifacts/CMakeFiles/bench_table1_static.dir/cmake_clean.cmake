file(REMOVE_RECURSE
  "../bench/bench_table1_static"
  "../bench/bench_table1_static.pdb"
  "CMakeFiles/bench_table1_static.dir/bench_table1_static.cpp.o"
  "CMakeFiles/bench_table1_static.dir/bench_table1_static.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
