# Empty dependencies file for bench_table1_static.
# This may be replaced when dependencies are built.
