# Empty dependencies file for bench_memoization.
# This may be replaced when dependencies are built.
