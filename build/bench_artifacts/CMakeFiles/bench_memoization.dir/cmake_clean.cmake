file(REMOVE_RECURSE
  "../bench/bench_memoization"
  "../bench/bench_memoization.pdb"
  "CMakeFiles/bench_memoization.dir/bench_memoization.cpp.o"
  "CMakeFiles/bench_memoization.dir/bench_memoization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memoization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
