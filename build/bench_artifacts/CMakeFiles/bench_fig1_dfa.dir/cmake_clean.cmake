file(REMOVE_RECURSE
  "../bench/bench_fig1_dfa"
  "../bench/bench_fig1_dfa.pdb"
  "CMakeFiles/bench_fig1_dfa.dir/bench_fig1_dfa.cpp.o"
  "CMakeFiles/bench_fig1_dfa.dir/bench_fig1_dfa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
