# Empty dependencies file for bench_leftrec.
# This may be replaced when dependencies are built.
