file(REMOVE_RECURSE
  "../bench/bench_leftrec"
  "../bench/bench_leftrec.pdb"
  "CMakeFiles/bench_leftrec.dir/bench_leftrec.cpp.o"
  "CMakeFiles/bench_leftrec.dir/bench_leftrec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leftrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
