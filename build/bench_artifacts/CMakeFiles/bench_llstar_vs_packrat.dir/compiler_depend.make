# Empty compiler generated dependencies file for bench_llstar_vs_packrat.
# This may be replaced when dependencies are built.
