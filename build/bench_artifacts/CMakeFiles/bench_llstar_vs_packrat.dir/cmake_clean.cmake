file(REMOVE_RECURSE
  "../bench/bench_llstar_vs_packrat"
  "../bench/bench_llstar_vs_packrat.pdb"
  "CMakeFiles/bench_llstar_vs_packrat.dir/bench_llstar_vs_packrat.cpp.o"
  "CMakeFiles/bench_llstar_vs_packrat.dir/bench_llstar_vs_packrat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_llstar_vs_packrat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
