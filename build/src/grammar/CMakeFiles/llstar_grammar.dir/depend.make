# Empty dependencies file for llstar_grammar.
# This may be replaced when dependencies are built.
