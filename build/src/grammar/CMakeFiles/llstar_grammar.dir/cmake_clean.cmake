file(REMOVE_RECURSE
  "CMakeFiles/llstar_grammar.dir/Grammar.cpp.o"
  "CMakeFiles/llstar_grammar.dir/Grammar.cpp.o.d"
  "CMakeFiles/llstar_grammar.dir/GrammarLexer.cpp.o"
  "CMakeFiles/llstar_grammar.dir/GrammarLexer.cpp.o.d"
  "CMakeFiles/llstar_grammar.dir/GrammarParser.cpp.o"
  "CMakeFiles/llstar_grammar.dir/GrammarParser.cpp.o.d"
  "libllstar_grammar.a"
  "libllstar_grammar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_grammar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
