file(REMOVE_RECURSE
  "libllstar_grammar.a"
)
