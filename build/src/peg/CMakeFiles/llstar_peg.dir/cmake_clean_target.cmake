file(REMOVE_RECURSE
  "libllstar_peg.a"
)
