file(REMOVE_RECURSE
  "CMakeFiles/llstar_peg.dir/PackratParser.cpp.o"
  "CMakeFiles/llstar_peg.dir/PackratParser.cpp.o.d"
  "libllstar_peg.a"
  "libllstar_peg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_peg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
