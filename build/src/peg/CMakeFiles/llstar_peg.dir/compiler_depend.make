# Empty compiler generated dependencies file for llstar_peg.
# This may be replaced when dependencies are built.
