# Empty compiler generated dependencies file for llstar_runtime.
# This may be replaced when dependencies are built.
