file(REMOVE_RECURSE
  "libllstar_runtime.a"
)
