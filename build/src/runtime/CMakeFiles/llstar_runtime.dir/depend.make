# Empty dependencies file for llstar_runtime.
# This may be replaced when dependencies are built.
