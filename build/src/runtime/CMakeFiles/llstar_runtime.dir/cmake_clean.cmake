file(REMOVE_RECURSE
  "CMakeFiles/llstar_runtime.dir/LLStarParser.cpp.o"
  "CMakeFiles/llstar_runtime.dir/LLStarParser.cpp.o.d"
  "CMakeFiles/llstar_runtime.dir/TreeUtils.cpp.o"
  "CMakeFiles/llstar_runtime.dir/TreeUtils.cpp.o.d"
  "libllstar_runtime.a"
  "libllstar_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
