file(REMOVE_RECURSE
  "CMakeFiles/llstar_analysis.dir/AnalyzedGrammar.cpp.o"
  "CMakeFiles/llstar_analysis.dir/AnalyzedGrammar.cpp.o.d"
  "CMakeFiles/llstar_analysis.dir/DecisionAnalyzer.cpp.o"
  "CMakeFiles/llstar_analysis.dir/DecisionAnalyzer.cpp.o.d"
  "libllstar_analysis.a"
  "libllstar_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
