
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/AnalyzedGrammar.cpp" "src/analysis/CMakeFiles/llstar_analysis.dir/AnalyzedGrammar.cpp.o" "gcc" "src/analysis/CMakeFiles/llstar_analysis.dir/AnalyzedGrammar.cpp.o.d"
  "/root/repo/src/analysis/DecisionAnalyzer.cpp" "src/analysis/CMakeFiles/llstar_analysis.dir/DecisionAnalyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/llstar_analysis.dir/DecisionAnalyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/llstar_support.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/llstar_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/atn/CMakeFiles/llstar_atn.dir/DependInfo.cmake"
  "/root/repo/build/src/dfa/CMakeFiles/llstar_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/leftrec/CMakeFiles/llstar_leftrec.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/llstar_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/llstar_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
