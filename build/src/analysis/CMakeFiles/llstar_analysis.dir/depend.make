# Empty dependencies file for llstar_analysis.
# This may be replaced when dependencies are built.
