file(REMOVE_RECURSE
  "libllstar_analysis.a"
)
