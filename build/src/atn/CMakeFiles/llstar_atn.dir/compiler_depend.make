# Empty compiler generated dependencies file for llstar_atn.
# This may be replaced when dependencies are built.
