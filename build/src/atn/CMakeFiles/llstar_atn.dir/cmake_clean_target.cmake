file(REMOVE_RECURSE
  "libllstar_atn.a"
)
