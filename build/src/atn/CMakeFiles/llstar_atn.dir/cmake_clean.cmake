file(REMOVE_RECURSE
  "CMakeFiles/llstar_atn.dir/ATN.cpp.o"
  "CMakeFiles/llstar_atn.dir/ATN.cpp.o.d"
  "CMakeFiles/llstar_atn.dir/ATNBuilder.cpp.o"
  "CMakeFiles/llstar_atn.dir/ATNBuilder.cpp.o.d"
  "libllstar_atn.a"
  "libllstar_atn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_atn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
