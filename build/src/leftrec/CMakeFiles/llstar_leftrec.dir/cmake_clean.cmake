file(REMOVE_RECURSE
  "CMakeFiles/llstar_leftrec.dir/LeftRecursionRewriter.cpp.o"
  "CMakeFiles/llstar_leftrec.dir/LeftRecursionRewriter.cpp.o.d"
  "libllstar_leftrec.a"
  "libllstar_leftrec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_leftrec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
