# Empty compiler generated dependencies file for llstar_leftrec.
# This may be replaced when dependencies are built.
