# Empty dependencies file for llstar_leftrec.
# This may be replaced when dependencies are built.
