file(REMOVE_RECURSE
  "libllstar_leftrec.a"
)
