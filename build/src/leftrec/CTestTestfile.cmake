# CMake generated Testfile for 
# Source directory: /root/repo/src/leftrec
# Build directory: /root/repo/build/src/leftrec
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
