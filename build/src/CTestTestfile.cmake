# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("regex")
subdirs("lexer")
subdirs("grammar")
subdirs("atn")
subdirs("dfa")
subdirs("analysis")
subdirs("runtime")
subdirs("peg")
subdirs("leftrec")
subdirs("codegen")
