file(REMOVE_RECURSE
  "CMakeFiles/llstar_lexer.dir/Lexer.cpp.o"
  "CMakeFiles/llstar_lexer.dir/Lexer.cpp.o.d"
  "CMakeFiles/llstar_lexer.dir/Vocabulary.cpp.o"
  "CMakeFiles/llstar_lexer.dir/Vocabulary.cpp.o.d"
  "libllstar_lexer.a"
  "libllstar_lexer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_lexer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
