# Empty dependencies file for llstar_lexer.
# This may be replaced when dependencies are built.
