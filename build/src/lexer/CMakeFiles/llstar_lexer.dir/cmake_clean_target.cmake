file(REMOVE_RECURSE
  "libllstar_lexer.a"
)
