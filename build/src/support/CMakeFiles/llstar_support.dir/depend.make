# Empty dependencies file for llstar_support.
# This may be replaced when dependencies are built.
