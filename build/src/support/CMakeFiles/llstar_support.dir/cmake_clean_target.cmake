file(REMOVE_RECURSE
  "libllstar_support.a"
)
