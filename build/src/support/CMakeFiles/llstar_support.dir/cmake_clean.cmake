file(REMOVE_RECURSE
  "CMakeFiles/llstar_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/llstar_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/llstar_support.dir/IntervalSet.cpp.o"
  "CMakeFiles/llstar_support.dir/IntervalSet.cpp.o.d"
  "CMakeFiles/llstar_support.dir/SourceLocation.cpp.o"
  "CMakeFiles/llstar_support.dir/SourceLocation.cpp.o.d"
  "CMakeFiles/llstar_support.dir/StringUtils.cpp.o"
  "CMakeFiles/llstar_support.dir/StringUtils.cpp.o.d"
  "libllstar_support.a"
  "libllstar_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
