file(REMOVE_RECURSE
  "libllstar_dfa.a"
)
