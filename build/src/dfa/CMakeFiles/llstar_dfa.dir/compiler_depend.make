# Empty compiler generated dependencies file for llstar_dfa.
# This may be replaced when dependencies are built.
