file(REMOVE_RECURSE
  "CMakeFiles/llstar_dfa.dir/LookaheadDFA.cpp.o"
  "CMakeFiles/llstar_dfa.dir/LookaheadDFA.cpp.o.d"
  "libllstar_dfa.a"
  "libllstar_dfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_dfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
