file(REMOVE_RECURSE
  "libllstar_codegen.a"
)
