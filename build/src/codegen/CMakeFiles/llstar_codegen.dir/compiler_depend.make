# Empty compiler generated dependencies file for llstar_codegen.
# This may be replaced when dependencies are built.
