file(REMOVE_RECURSE
  "CMakeFiles/llstar_codegen.dir/CppGenerator.cpp.o"
  "CMakeFiles/llstar_codegen.dir/CppGenerator.cpp.o.d"
  "CMakeFiles/llstar_codegen.dir/Serializer.cpp.o"
  "CMakeFiles/llstar_codegen.dir/Serializer.cpp.o.d"
  "libllstar_codegen.a"
  "libllstar_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
