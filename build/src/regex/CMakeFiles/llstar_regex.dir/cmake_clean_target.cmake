file(REMOVE_RECURSE
  "libllstar_regex.a"
)
