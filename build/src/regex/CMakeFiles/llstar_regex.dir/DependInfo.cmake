
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/CharDFA.cpp" "src/regex/CMakeFiles/llstar_regex.dir/CharDFA.cpp.o" "gcc" "src/regex/CMakeFiles/llstar_regex.dir/CharDFA.cpp.o.d"
  "/root/repo/src/regex/NFA.cpp" "src/regex/CMakeFiles/llstar_regex.dir/NFA.cpp.o" "gcc" "src/regex/CMakeFiles/llstar_regex.dir/NFA.cpp.o.d"
  "/root/repo/src/regex/RegexAST.cpp" "src/regex/CMakeFiles/llstar_regex.dir/RegexAST.cpp.o" "gcc" "src/regex/CMakeFiles/llstar_regex.dir/RegexAST.cpp.o.d"
  "/root/repo/src/regex/RegexParser.cpp" "src/regex/CMakeFiles/llstar_regex.dir/RegexParser.cpp.o" "gcc" "src/regex/CMakeFiles/llstar_regex.dir/RegexParser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/llstar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
