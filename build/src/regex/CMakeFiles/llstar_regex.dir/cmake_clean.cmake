file(REMOVE_RECURSE
  "CMakeFiles/llstar_regex.dir/CharDFA.cpp.o"
  "CMakeFiles/llstar_regex.dir/CharDFA.cpp.o.d"
  "CMakeFiles/llstar_regex.dir/NFA.cpp.o"
  "CMakeFiles/llstar_regex.dir/NFA.cpp.o.d"
  "CMakeFiles/llstar_regex.dir/RegexAST.cpp.o"
  "CMakeFiles/llstar_regex.dir/RegexAST.cpp.o.d"
  "CMakeFiles/llstar_regex.dir/RegexParser.cpp.o"
  "CMakeFiles/llstar_regex.dir/RegexParser.cpp.o.d"
  "libllstar_regex.a"
  "libllstar_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llstar_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
