# Empty dependencies file for llstar_regex.
# This may be replaced when dependencies are built.
