# Empty compiler generated dependencies file for generated_config.
# This may be replaced when dependencies are built.
