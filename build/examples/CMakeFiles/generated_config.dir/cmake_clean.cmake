file(REMOVE_RECURSE
  "CMakeFiles/generated_config.dir/ConfigParser.cpp.o"
  "CMakeFiles/generated_config.dir/ConfigParser.cpp.o.d"
  "CMakeFiles/generated_config.dir/generated_config.cpp.o"
  "CMakeFiles/generated_config.dir/generated_config.cpp.o.d"
  "ConfigParser.cpp"
  "ConfigParser.h"
  "generated_config"
  "generated_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generated_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
