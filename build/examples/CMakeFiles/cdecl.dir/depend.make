# Empty dependencies file for cdecl.
# This may be replaced when dependencies are built.
