file(REMOVE_RECURSE
  "CMakeFiles/cdecl.dir/cdecl.cpp.o"
  "CMakeFiles/cdecl.dir/cdecl.cpp.o.d"
  "cdecl"
  "cdecl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdecl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
