# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/llstar_tests[1]_include.cmake")
add_test(cli_analyze "/root/repo/build/tools/llstar" "analyze" "/root/repo/grammars/dot.g" "--dfa" "stmt")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;28;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_generate "/root/repo/build/tools/llstar" "generate" "/root/repo/grammars/ini.g" "IniGen" "-o" "/root/repo/build/tests")
set_tests_properties(cli_generate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;30;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/llstar" "bogus")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;33;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_parse_json "/root/repo/build/tools/llstar" "parse" "/root/repo/grammars/json.g" "/root/repo/build/tests/sample.json" "--tree" "--stats")
set_tests_properties(cli_parse_json PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;37;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli_parse_peg "/root/repo/build/tools/llstar" "parse" "/root/repo/grammars/json.g" "/root/repo/build/tests/sample.json" "--peg")
set_tests_properties(cli_parse_peg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
