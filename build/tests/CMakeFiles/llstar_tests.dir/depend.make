# Empty dependencies file for llstar_tests.
# This may be replaced when dependencies are built.
