
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/AnalysisRegressionTests.cpp" "tests/CMakeFiles/llstar_tests.dir/AnalysisRegressionTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/AnalysisRegressionTests.cpp.o.d"
  "/root/repo/tests/AnalysisTests.cpp" "tests/CMakeFiles/llstar_tests.dir/AnalysisTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/AnalysisTests.cpp.o.d"
  "/root/repo/tests/AtnTests.cpp" "tests/CMakeFiles/llstar_tests.dir/AtnTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/AtnTests.cpp.o.d"
  "/root/repo/tests/CodegenTests.cpp" "tests/CMakeFiles/llstar_tests.dir/CodegenTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/CodegenTests.cpp.o.d"
  "/root/repo/tests/DfaTests.cpp" "tests/CMakeFiles/llstar_tests.dir/DfaTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/DfaTests.cpp.o.d"
  "/root/repo/tests/ErrorHandlingTests.cpp" "tests/CMakeFiles/llstar_tests.dir/ErrorHandlingTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/ErrorHandlingTests.cpp.o.d"
  "/root/repo/tests/GrammarPackTests.cpp" "tests/CMakeFiles/llstar_tests.dir/GrammarPackTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/GrammarPackTests.cpp.o.d"
  "/root/repo/tests/GrammarTests.cpp" "tests/CMakeFiles/llstar_tests.dir/GrammarTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/GrammarTests.cpp.o.d"
  "/root/repo/tests/IntegrationTests.cpp" "tests/CMakeFiles/llstar_tests.dir/IntegrationTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/IntegrationTests.cpp.o.d"
  "/root/repo/tests/LeftRecTests.cpp" "tests/CMakeFiles/llstar_tests.dir/LeftRecTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/LeftRecTests.cpp.o.d"
  "/root/repo/tests/LexerTests.cpp" "tests/CMakeFiles/llstar_tests.dir/LexerTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/LexerTests.cpp.o.d"
  "/root/repo/tests/PackratTests.cpp" "tests/CMakeFiles/llstar_tests.dir/PackratTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/PackratTests.cpp.o.d"
  "/root/repo/tests/PredictionContextTests.cpp" "tests/CMakeFiles/llstar_tests.dir/PredictionContextTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/PredictionContextTests.cpp.o.d"
  "/root/repo/tests/PropertyTests.cpp" "tests/CMakeFiles/llstar_tests.dir/PropertyTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/PropertyTests.cpp.o.d"
  "/root/repo/tests/RegexTests.cpp" "tests/CMakeFiles/llstar_tests.dir/RegexTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/RegexTests.cpp.o.d"
  "/root/repo/tests/RuntimeTests.cpp" "tests/CMakeFiles/llstar_tests.dir/RuntimeTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/RuntimeTests.cpp.o.d"
  "/root/repo/tests/SupportTests.cpp" "tests/CMakeFiles/llstar_tests.dir/SupportTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/SupportTests.cpp.o.d"
  "/root/repo/tests/TokenSetTests.cpp" "tests/CMakeFiles/llstar_tests.dir/TokenSetTests.cpp.o" "gcc" "tests/CMakeFiles/llstar_tests.dir/TokenSetTests.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench_artifacts/common/CMakeFiles/llstar_benchcommon.dir/DependInfo.cmake"
  "/root/repo/build/src/peg/CMakeFiles/llstar_peg.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/llstar_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/llstar_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/llstar_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dfa/CMakeFiles/llstar_dfa.dir/DependInfo.cmake"
  "/root/repo/build/src/atn/CMakeFiles/llstar_atn.dir/DependInfo.cmake"
  "/root/repo/build/src/leftrec/CMakeFiles/llstar_leftrec.dir/DependInfo.cmake"
  "/root/repo/build/src/grammar/CMakeFiles/llstar_grammar.dir/DependInfo.cmake"
  "/root/repo/build/src/lexer/CMakeFiles/llstar_lexer.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/llstar_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/llstar_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
