// INI configuration files (same language as the generated-parser example).
grammar Ini;

file    : section* EOF ;
section : '[' ID ']' entry* ;
entry   : ID '=' value ;
value   : INT | STRING | ID (',' ID)* ;

ID     : [a-zA-Z_] [a-zA-Z0-9_.]* ;
INT    : '-'? [0-9]+ ;
STRING : '"' (~["\n])* '"' ;
WS     : [ \t\r\n]+ -> skip ;
COMMENT : '#' ~[\n]* -> skip ;
