//===- CompiledManifest.h - Shipped compiled-grammar registry ---*- C++ -*-===//
//
// Part of the llstar project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registers the checked-in compiled modules (one per shipped grammar in
/// grammars/) with the compiled-grammar registry. Hand-written on purpose:
/// static self-registration inside an archive member gets dropped by the
/// linker when nothing references the member, so tools opt in explicitly.
///
/// Regenerating a module:
///   build/tools/llstar compile grammars/<g>.g --emit-cpp
///       -o grammars/compiled/<g>_compiled.cpp
/// (one command line), then add its kModule_<Name> symbol here if the
/// grammar is new. CI
/// regenerates every module and fails on any diff, so the checked-in
/// tables can never silently drift from the grammar sources.
///
//===----------------------------------------------------------------------===//

#ifndef LLSTAR_GRAMMARS_COMPILED_COMPILEDMANIFEST_H
#define LLSTAR_GRAMMARS_COMPILED_COMPILEDMANIFEST_H

namespace llstar {
namespace compiled {

/// Registers every shipped compiled-grammar module (idempotent).
void registerShippedGrammars();

} // namespace compiled
} // namespace llstar

#endif // LLSTAR_GRAMMARS_COMPILED_COMPILEDMANIFEST_H
