#include "CompiledManifest.h"

#include "compiled/CompiledRegistry.h"

namespace llstar {
namespace compiled {

// Defined in the generated <grammar>_compiled.cpp modules alongside.
extern const CompiledGrammarModule kModule_Csv;
extern const CompiledGrammarModule kModule_Dot;
extern const CompiledGrammarModule kModule_Ini;
extern const CompiledGrammarModule kModule_Json;
extern const CompiledGrammarModule kModule_Lambda;
extern const CompiledGrammarModule kModule_Lua;
extern const CompiledGrammarModule kModule_Sexpr;

void registerShippedGrammars() {
  for (const CompiledGrammarModule *M :
       {&kModule_Csv, &kModule_Dot, &kModule_Ini, &kModule_Json,
        &kModule_Lambda, &kModule_Lua, &kModule_Sexpr})
    registerCompiledModule(*M);
}

} // namespace compiled
} // namespace llstar
