// Lambda calculus with let-bindings; application is left-associative
// juxtaposition via the left-recursion rewrite.
grammar Lambda;

program : term EOF ;
term    : 'lambda' ID '.' term
        | 'let' ID '=' term 'in' term
        | app
        ;
app     : app atom | atom ;
atom    : ID | NUMBER | '(' term ')' ;

ID     : [a-z] [a-zA-Z0-9_]* ;
NUMBER : [0-9]+ ;
WS     : [ \t\r\n]+ -> skip ;
