// JSON (ECMA-404). Pure LL(1): every decision is a one-token DFA.
grammar Json;

json    : value EOF ;
value   : object | array | STRING | NUMBER | 'true' | 'false' | 'null' ;
object  : '{' (member (',' member)*)? '}' ;
member  : STRING ':' value ;
array   : '[' (value (',' value)*)? ']' ;

STRING : '"' (~["\\] | '\\' ["\\/bfnrtu])* '"' ;
NUMBER : '-'? ('0' | [1-9] [0-9]*) ('.' [0-9]+)? (('e' | 'E') ('+' | '-')? [0-9]+)? ;
WS     : [ \t\r\n]+ -> skip ;
