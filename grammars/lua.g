// A Lua 5.x subset. Two classic lookahead problems live here:
//  - statement-level `varlist = explist` vs a bare function call both
//    begin with an arbitrarily long prefix expression (a.b[k].c = v vs
//    a.b[k].c(x)): resolved with a syntactic predicate;
//  - the numeric and generic `for` forms share the NAME prefix.
// The expression rule is immediately left-recursive with mixed
// associativities ('^' and '..' are right-associative in Lua).
grammar Lua;
// PEG mode: stat-level decisions (assignment vs call, the suffix loop)
// are beyond any regular approximation; analysis keeps backtracking only
// where needed (paper Section 2).
options { backtrack=true; memoize=true; }

chunk   : block EOF ;
block   : stat* retstat? ;
retstat : 'return' explist? ';'? ;

// Assignment vs call both start with an unbounded prefixexp: recursion in
// two alternatives is the paper's LikelyNonLLRegular case, resolved by the
// explicit (varlist '=')=> backtrack below.
// llstar-lint-disable non-ll-regular
stat : ';'
     | (varlist '=')=> varlist '=' explist
     | prefixexp
     | 'do' block 'end'
     | 'while' exp 'do' block 'end'
     | 'repeat' block 'until' exp
     | 'if' exp 'then' block ('elseif' exp 'then' block)*
       ('else' block)? 'end'
     | ('for' NAME '=')=> 'for' NAME '=' exp ',' exp (',' exp)? 'do'
       block 'end'
     | 'for' namelist 'in' explist 'do' block 'end'
     | 'function' funcname funcbody
     | 'local' ('function' NAME funcbody | namelist ('=' explist)?)
     | 'break'
     ;

funcname : NAME ('.' NAME)* (':' NAME)? ;
varlist  : var (',' var)* ;
var      : prefixexp ;
namelist : NAME (',' NAME)* ;
explist  : exp (',' exp)* ;

exp : {assoc=right} exp '^' exp
    | ('not' | '#' | '-') exp
    | exp ('*' | '/' | '%') exp
    | exp ('+' | '-') exp
    | {assoc=right} exp '..' exp
    | exp ('<' | '>' | '<=' | '>=' | '~=' | '==') exp
    | exp 'and' exp
    | exp 'or' exp
    | 'nil' | 'true' | 'false' | NUMBER | STRING | '...'
    | 'function' funcbody
    | prefixexp
    | tableconstructor
    ;

prefixexp  : primaryexp suffix* ;
primaryexp : NAME | '(' exp ')' ;
suffix     : '.' NAME
           | '[' exp ']'
           | ':' NAME args
           | args
           ;
args       : '(' explist? ')' | STRING | tableconstructor ;

funcbody : '(' parlist? ')' block 'end' ;
parlist  : namelist (',' '...')? | '...' ;

tableconstructor : '{' (field ((',' | ';') field)* (',' | ';')?)? '}' ;
field            : '[' exp ']' '=' exp
                 // llstar-lint-disable synpred-redundant
                 | (NAME '=')=> NAME '=' exp
                 | exp
                 ;

NAME    : [a-zA-Z_] [a-zA-Z0-9_]* ;
NUMBER  : [0-9]+ ('.' [0-9]+)? ([eE] [+\-]? [0-9]+)?
        | '0' [xX] [0-9a-fA-F]+ ;
STRING  : '"' (~["\\\n] | '\\' .)* '"'
        | '\'' (~['\\\n] | '\\' .)* '\'' ;
WS      : [ \t\r\n]+ -> skip ;
COMMENT : '--' ~[\n]* -> skip ;
