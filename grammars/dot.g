// A Graphviz DOT subset: graphs, digraphs, subgraphs, attributes.
// The edge-vs-node statement decision needs lookahead past the node id.
grammar Dot;

graph     : 'strict'? ('graph' | 'digraph') ID? '{' stmt* '}' EOF ;
// LL(*) cyclic lookahead decides edge-vs-node without backtracking; the
// predicate stays as documentation of the decision ANTLR 2/3 needed it for.
// llstar-lint-disable synpred-redundant
stmt      : (nodeId edgeRhs)=> edgeStmt ';'?
          | ('graph' | 'node' | 'edge') attrList ';'?
          | 'subgraph' ID? '{' stmt* '}'
          | ID '=' idOrValue ';'?
          | nodeStmt ';'?
          ;
nodeStmt  : nodeId attrList? ;
edgeStmt  : nodeId edgeRhs+ attrList? ;
edgeRhs   : ('->' | '--') nodeId ;
nodeId    : ID (':' ID)? ;
attrList  : ('[' (attr (',' attr)*)? ']')+ ;
attr      : ID '=' idOrValue ;
idOrValue : ID | NUMBER | STRING ;

ID     : [a-zA-Z_] [a-zA-Z0-9_]* ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
WS     : [ \t\r\n]+ -> skip ;
COMMENT : '//' ~[\n]* -> skip ;
