// S-expressions with quote sugar.
grammar Sexpr;

program : sexpr* EOF ;
sexpr   : atom | '(' sexpr* ')' | '\'' sexpr ;
atom    : SYMBOL | NUMBER | STRING ;

SYMBOL : [a-zA-Z+\-*/<>=!?_] [a-zA-Z0-9+\-*/<>=!?_]* ;
NUMBER : '-'? [0-9]+ ('.' [0-9]+)? ;
STRING : '"' (~["\\] | '\\' .)* '"' ;
WS     : [ \t\r\n]+ -> skip ;
COMMENT : ';' ~[\n]* -> skip ;
