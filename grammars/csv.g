// RFC-4180-style CSV. Newlines are significant tokens here, so only
// spaces/tabs are skipped.
grammar Csv;

// A trailing newline is genuinely ambiguous with an empty record (field
// may derive nothing); production order keeps the record loop greedy.
// llstar-lint-disable ambiguity
file   : header (NL record)* NL? EOF ;
header : record ;
record : field (',' field)* ;
field  : QUOTED | BARE | ;

QUOTED : '"' (~["] | '""')* '"' ;
BARE   : (~[,"\r\n ] ~[,"\r\n]*) ;
NL     : '\r'? '\n' ;
WS     : [ \t]+ -> skip ;
